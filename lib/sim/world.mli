(** The simulated distributed system, implementing exactly the paper's
    environmental assumptions: reliable point-to-point communication, a
    network that detects site failures and reliably reports them to every
    operational site, fail-stop crashes with later recovery, and stable
    storage managed by the layers above.

    Partial state transitions are expressible: a handler may call
    {!crash_self} between two sends, after which its remaining sends are
    dropped — the site "transmitted only part of the messages" of the
    transition. *)

type site = int

type msg_fault =
  | Fault_drop  (** the message never makes it onto the wire *)
  | Fault_duplicate  (** two copies are enqueued, each with its own latency *)
  | Fault_delay of float  (** extra latency on top of the normal draw — reordering *)
[@@deriving show, eq]

type trace_entry = { at : float; what : string }

type 'msg t

type 'msg ctx = { world : 'msg t; self : site }
(** The capability handed to handlers: the world plus the identity of the
    site the handler runs at. *)

type 'msg handlers = {
  on_start : 'msg ctx -> unit;  (** called once at time 0 *)
  on_message : 'msg ctx -> src:site -> 'msg -> unit;
  on_peer_down : 'msg ctx -> site -> unit;  (** reliable failure report *)
  on_peer_up : 'msg ctx -> site -> unit;  (** reliable recovery report *)
  on_restart : 'msg ctx -> unit;  (** this site restarts after a crash *)
}

val create :
  ?latency:('msg t -> src:site -> dst:site -> float) ->
  ?detection_delay:float ->
  n_sites:int ->
  seed:int ->
  msg_to_string:('msg -> string) ->
  unit ->
  'msg t
(** A world of [n_sites] sites (numbered 1..n), all initially
    operational.  Default latency: 1.0 + U(0, 0.1); default detection
    delay: 2.0.  Deterministic in [seed]. *)

val now : 'msg t -> float
val rng : 'msg t -> Rng.t
val metrics : 'msg t -> Metrics.t
val sites : 'msg t -> site list
val is_alive : 'msg t -> site -> bool
(** The perfect failure detector's current view. *)

val operational_sites : 'msg t -> site list

val send : 'msg ctx -> dst:site -> 'msg -> unit
(** Messages from a crashed sender are dropped (partial transmission);
    messages reach [dst] only if it is still the same incarnation on
    arrival. *)

val set_msg_faults : 'msg t -> (int * msg_fault) list -> unit
(** Arm message-level faults keyed by global send index: the [nth] send
    attempt from a live sender (0-based, counted across all sites and
    whether or not a partition drops it) suffers the paired fault.
    Indices beyond the run's actual send count never fire.  Replaces any
    previously armed schedule. *)

val sends_attempted : 'msg t -> int
(** How many fault-indexable send attempts have happened so far. *)

val add_crash_hook : 'msg t -> (site -> unit) -> unit
(** [f site] runs at the instant [site] crashes, before any other site
    can observe the failure — the durability layer registers here so a
    crash drops the site's unsynced log tail, and the failure detector
    registers here to timestamp real crashes for suspicion-latency
    accounting.  Hooks compose: each registration appends, and all hooks
    run in registration order on every crash. *)

val set_crash_hook : 'msg t -> (site -> unit) -> unit
(** Deprecated alias for {!add_crash_hook} (it no longer replaces prior
    hooks — registrations accumulate). *)

val schedule_latency_spike :
  'msg t -> site:site -> from_t:float -> until_t:float -> extra:float -> unit
(** Add [extra] latency to every message sent from or to [site] while the
    window \[[from_t], [until_t]) is open, judged at send time like
    partitions.  Does not consume message-fault indices, so armed fault
    schedules replay unchanged. *)

val schedule_stall :
  'msg t -> site:site -> from_t:float -> until_t:float -> unit
(** Freeze [site]'s processor — a "GC pause" — during the window:
    deliveries, timers and detector reports targeting it are deferred to
    the window's end and then dispatch in one burst.  The site does not
    crash, and crashes/recoveries scheduled inside the window still
    happen on time. *)

val schedule_hb_loss :
  'msg t -> site:site -> from_t:float -> until_t:float -> unit
(** Suppress failure-detector heartbeats sent by [site] during the
    window.  Protocol messages are untouched: the channel stays reliable
    while the detector starves — the canonical false-suspicion fault. *)

val hb_suppressed : 'msg t -> site -> bool
(** Is the site currently inside a heartbeat-loss window?  Queried by
    {!Detector} before each heartbeat broadcast. *)

val broadcast : 'msg ctx -> dsts:site list -> 'msg -> unit

val inject : 'msg t -> dst:site -> at:float -> 'msg -> unit
(** Delivery from the environment (site 0) at absolute time [at] — the
    initial transaction requests. *)

val set_timer : 'msg ctx -> delay:float -> (unit -> unit) -> int
(** Fires unless the site crashes first or the timer is cancelled;
    returns a cancellation id. *)

val cancel_timer : 'msg ctx -> int -> unit
val schedule_crash : 'msg t -> at:float -> site -> unit
val schedule_recovery : 'msg t -> at:float -> site -> unit

val schedule_partition : 'msg t -> from_t:float -> until_t:float -> site list list -> unit
(** Split the network into the given groups during [from_t, until_t):
    messages between groups are dropped and — violating the paper's
    reliable-detector assumption — each side's detector wrongly reports
    the other side's sites as failed after the detection delay.  Healing
    issues recovery reports.  Used by the ablation experiment that shows
    why the paper must assume a partition-free network. *)

val crash_self : 'msg ctx -> unit
(** Immediate crash of the calling site: pending timers die, later sends
    in the same handler are dropped. *)

val stop : 'msg t -> unit

val run : 'msg t -> handlers:(site -> 'msg handlers) -> ?until:float -> unit -> float
(** Registers handlers, starts every site, processes events in timestamp
    order until quiescence, [until] (default 100_000.0), or {!stop}.
    Returns the final simulation time. *)

val set_tracing : 'msg t -> bool -> unit
val trace_entries : 'msg t -> trace_entry list
val record : 'msg t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a formatted line to the trace (no-op unless tracing). *)

val pp_trace : Format.formatter -> 'msg t -> unit
