(** A binary min-heap of timestamped events.

    Ties on time are broken by insertion sequence number, which makes the
    simulation schedule fully deterministic.

    Slots are ['a entry option] so a vacated slot can be cleared to
    [None] on pop: otherwise the array would retain every popped entry —
    and its closure payload, e.g. timer callbacks capturing site state —
    until the slot happened to be overwritten by a later push. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable heap : 'a entry option array; mutable size : int; mutable next_seq : int }

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let get t i = match t.heap.(i) with Some e -> e | None -> assert false

let entry_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let heap = Array.make cap None in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before (get t i) (get t parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_before (get t l) (get t !smallest) then smallest := l;
  if r < t.size && entry_before (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

(** [push t ~time payload] schedules [payload] at [time]. *)
let push t ~time payload =
  if time < 0.0 || Float.is_nan time then invalid_arg "Eventq.push: bad time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- Some entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** [pop t] removes and returns the earliest event, or [None] if empty.
    The vacated slot is cleared so the heap never retains popped
    payloads. *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- None;
      sift_down t 0
    end
    else t.heap.(0) <- None;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time
