(** Domain-sharded seed sweeps with deterministic, worker-count-independent
    results.

    Isolation invariant: the sweep function must derive everything
    mutable it touches from [seed] alone — one {!World}, one {!Metrics}
    registry and one {!Rng} stream per seed, nothing ambient.  Shared
    read-only inputs (a compiled rulebook, a profile) are fine. *)

val available_workers : unit -> int
(** [Domain.recommended_domain_count ()] — the host's useful parallelism. *)

val map : ?workers:int -> ?seed_base:int -> seeds:int -> (seed:int -> 'a) -> 'a array
(** [map ~workers ~seed_base ~seeds f] evaluates
    [f ~seed:(seed_base + i)] for [i] in [0 .. seeds-1] across
    [workers] domains (default 1 — a plain sequential loop, no domain
    spawned) and returns the results indexed by seed offset.  Worker
    assignment is load-balanced via a shared cursor and unobservable in
    the result: any worker count returns the identical array.
    @raise Invalid_argument if [workers < 1] or [seeds < 0]. *)

val sweep :
  ?workers:int ->
  ?seed_base:int ->
  seeds:int ->
  (metrics:Metrics.t -> seed:int -> 'a) ->
  'a array * Metrics.t
(** [map] plus the metrics plumbing every sweep wants: each seed gets a
    fresh registry, drained of in-flight timers when its run ends, and
    the per-seed registries are {!Metrics.merge}d in seed order — so the
    merged registry is byte-identical whatever [workers] is. *)
