(** Randomized fault-schedule generation.

    A nemesis schedule is a list of discrete faults — timed crashes with
    optional recoveries, protocol-step-pinned crashes (interpreted by the
    engine layer), backup-phase crashes, partitions with heals, and
    message-level faults keyed by global send index ({!World.msg_fault}).
    Discreteness is the point: a schedule shrinks by dropping one fault at
    a time, and it round-trips through text, so a minimal counterexample
    can be pasted into a regression test.

    Generation is a pure function of the {!Rng.t} handed in: the same
    stream yields the same schedule, byte for byte. *)

type backup_phase = Move | Decide [@@deriving show { with_path = false }, eq]

type fault =
  | Crash of { site : int; at : float }
  | Step_crash of { site : int; step : int; sent : int option }
      (** crash while executing the [step]-th protocol transition; [sent]
          is how many of the transition's messages were sent after the
          forced log write ([None] = before the write).  Interpreted by
          the engine layer; sim-only drivers ignore it. *)
  | Backup_crash of { site : int; phase : backup_phase; sent : int }
      (** crash while acting as elected backup, mid-broadcast of the
          termination protocol's phase-1 moves or phase-2 decides *)
  | Recover of { site : int; at : float }
  | Partition of { from_t : float; until_t : float; groups : int list list }
  | Msg of { nth : int; fault : World.msg_fault }
  | Disk_fault of { site : int; fault : Disk.fault; nth : int }
      (** storage fault on the site's log device: [Torn]/[Corrupt] fire
          at the disk's [nth] crash, [Lost_flush] at its [nth] sync *)
  | Delay_window of { site : int; from_t : float; until_t : float; extra : float }
      (** latency spike: every message touching [site] in the window gets
          [extra] added on top of its normal draw *)
  | Stall of { site : int; from_t : float; until_t : float }
      (** "GC pause": the site's processor freezes for the window — alive
          but silent, the canonical false-suspicion provocation *)
  | Hb_loss of { site : int; from_t : float; until_t : float }
      (** heartbeat-loss burst: the site's detector heartbeats are
          suppressed while protocol traffic flows untouched *)
  | Acceptor_crash of { site : int; at : float }
      (** timed crash aimed at a Paxos-Commit acceptor site: semantically
          a [Crash], kept distinct so acceptor-targeted sweeps (and the
          family validation in the CLI) can tell replicated-state faults
          from ordinary participant crashes *)
  | Lease_fault of { at : float }
      (** leader-lease expiry at [at]: a standby acceptor starts a
          higher-ballot recovery round even though the current leader is
          alive — exercising ballot fencing the way stale-epoch
          directives exercise epoch fencing *)
  | Storm of { site : int; first : float; waves : int; period : float; down : float }
      (** crash-recover storm: [waves] crash/recover cycles on one site —
          wave [i] crashes at [first + i*period] and recovers [down]
          seconds later ([down < period], so the site is up between
          waves and up at the end).  A single discrete fault, so
          shrinking drops the whole storm at once; lowering expands it
          to timed crash/recover pairs ({!storm_events}). *)
[@@deriving show { with_path = false }, eq]

type schedule = fault list [@@deriving show { with_path = false }, eq]

type profile = {
  horizon : float;  (** timed crashes land in [0, horizon) *)
  p_step_crash : float;  (** a crash incident is step-pinned rather than timed *)
  p_backup_crash : float;  (** ... or pinned to the backup's own broadcasts *)
  p_recover : float;  (** a crashed site later recovers *)
  recover_delay_min : float;
  recover_delay_max : float;
  max_steps : int;  (** step-pinned crashes draw their step from [0, max_steps) *)
  max_msg_faults : int;
  send_window : int;  (** message-fault indices are drawn from [0, send_window) *)
  dup_weight : int;
  delay_weight : int;
  drop_weight : int;
      (** relative weights for duplicate / extra-delay / drop message
          faults.  Drops default to 0: dropping a message violates the
          paper's reliable-network assumption outright, so they are
          opt-in for ablation profiles, like partitions. *)
  delay_max : float;  (** extra delay drawn from (0, delay_max] *)
  p_partition : float;
      (** probability the schedule includes one partition window.
          Default 0: under partitions the Skeen termination rule is
          *known* to split-brain (ablation E13), so partition chaos is an
          ablation profile, not a correctness profile. *)
  partition_min_len : float;
  partition_max_len : float;
  p_disk_fault : float;
      (** probability a crash incident carries a storage fault on the
          crashing site's log device.  Default 0 — and generation draws
          nothing from the stream when 0, so schedules (and everything
          downstream of them) are byte-identical to a profile without
          disk faults. *)
  torn_weight : int;
  corrupt_weight : int;
  lost_flush_weight : int;
      (** relative weights of the three {!Disk.fault} kinds.  Lost
          flushes default to 0: a lying sync violates the paper's
          stable-storage axiom outright, so they are opt-in for ablation
          profiles, exactly like message drops. *)
  disk_sync_window : int;  (** [Lost_flush] sync indices are drawn from [0, disk_sync_window) *)
  p_delay_spike : float;
      (** probability the schedule includes one latency-spike window.
          Default 0 — and generation draws nothing from the stream when
          0, so detector-era profiles leave earlier schedules
          byte-identical (the same discipline as [p_disk_fault]). *)
  spike_extra_min : float;
  spike_extra_max : float;  (** extra latency drawn from [spike_extra_min, spike_extra_max) *)
  p_stall : float;  (** probability of one slow-site ("GC pause") stall window; default 0 *)
  p_hb_loss : float;  (** probability of one heartbeat-loss burst; default 0 *)
  detector_window_min : float;
  detector_window_max : float;
      (** spike/stall/heartbeat-loss window lengths are drawn from
          [detector_window_min, detector_window_max) *)
  p_acceptor_crash : float;
      (** per-candidate probability an acceptor site crashes.  Default 0
          — and generation draws nothing from the stream when 0, the
          same replay discipline as [p_disk_fault]. *)
  acceptor_sites : int list;
      (** the candidate acceptor sites acceptor crashes are drawn from;
          empty (the default) disables them regardless of probability *)
  max_acceptor_crashes : int;
      (** at most this many acceptor crashes per schedule — sweeps set
          it to the Paxos F so generated schedules stay survivable *)
  p_lease_fault : float;
      (** probability of one leader-lease expiry; default 0 (zero draws) *)
  p_storm : float;
      (** probability of one crash-recover storm.  Default 0 — and
          generation draws nothing from the stream when 0, the same
          replay discipline as [p_disk_fault]: every pre-storm schedule
          replays byte-identically. *)
  storm_waves_min : int;
  storm_waves_max : int;  (** wave count drawn from [storm_waves_min, storm_waves_max] *)
  storm_period_min : float;
  storm_period_max : float;  (** crash-to-crash period drawn from [storm_period_min, storm_period_max) *)
  storm_down_frac_min : float;
  storm_down_frac_max : float;
      (** each wave's downtime is this fraction of the period, drawn from
          [storm_down_frac_min, storm_down_frac_max) — strictly below 1
          so the site is up between waves and after the last one *)
}

let default_profile =
  {
    horizon = 12.0;
    p_step_crash = 0.35;
    p_backup_crash = 0.15;
    p_recover = 0.6;
    recover_delay_min = 5.0;
    recover_delay_max = 80.0;
    max_steps = 5;
    max_msg_faults = 3;
    send_window = 40;
    dup_weight = 3;
    delay_weight = 3;
    drop_weight = 0;
    delay_max = 8.0;
    p_partition = 0.0;
    partition_min_len = 5.0;
    partition_max_len = 40.0;
    p_disk_fault = 0.0;
    torn_weight = 1;
    corrupt_weight = 1;
    lost_flush_weight = 0;
    disk_sync_window = 16;
    p_delay_spike = 0.0;
    spike_extra_min = 2.0;
    spike_extra_max = 12.0;
    p_stall = 0.0;
    p_hb_loss = 0.0;
    detector_window_min = 4.0;
    detector_window_max = 15.0;
    p_acceptor_crash = 0.0;
    acceptor_sites = [];
    max_acceptor_crashes = 0;
    p_lease_fault = 0.0;
    p_storm = 0.0;
    storm_waves_min = 2;
    storm_waves_max = 4;
    storm_period_min = 60.0;
    storm_period_max = 160.0;
    storm_down_frac_min = 0.25;
    storm_down_frac_max = 0.75;
  }

(* The (site, crash_at, recover_at) events a storm expands to at lowering
   time; [] for every other fault. *)
let storm_events = function
  | Storm { site; first; waves; period; down } ->
      List.init waves (fun i ->
          let at = first +. (float_of_int i *. period) in
          (site, at, at +. down))
  | Crash _ | Step_crash _ | Backup_crash _ | Recover _ | Partition _ | Msg _ | Disk_fault _
  | Delay_window _ | Stall _ | Hb_loss _ | Acceptor_crash _ | Lease_fault _ ->
      []

(* Conservative activity interval of a crash incident, for the ≤ k
   concurrent-failures bound: step- and backup-pinned crashes have no
   a-priori firing time, so they are treated as down from time 0. *)
let interval = function
  | Crash { at; _ } | Acceptor_crash { at; _ } -> Some (at, infinity)
  | Step_crash _ | Backup_crash _ -> Some (0.0, infinity)
  | Storm { first; waves; period; down; _ } ->
      (* whole-envelope: the site is intermittently down from the first
         crash to the last recovery; treating the envelope as solid keeps
         the ≤ k bound conservative *)
      Some (first, first +. (float_of_int (waves - 1) *. period) +. down)
  | Recover _ | Partition _ | Msg _ | Disk_fault _ | Delay_window _ | Stall _ | Hb_loss _
  | Lease_fault _ ->
      None

let close_interval recovery_at = function
  | Some (from_t, _) -> Some (from_t, recovery_at)
  | None -> None

let overlaps (a0, a1) (b0, b1) = a0 < b1 && b0 < a1

(* Would adding [iv] push some instant above [k] concurrent failures? *)
let fits_k k existing iv =
  let concurrent = List.filter (fun iv' -> overlaps iv iv') existing in
  List.length concurrent < k

let gen_crash_incident rng ~n_sites ~site profile =
  let kind =
    let x = Rng.float rng 1.0 in
    if x < profile.p_step_crash then `Step
    else if x < profile.p_step_crash +. profile.p_backup_crash then `Backup
    else `Timed
  in
  let crash =
    match kind with
    | `Timed -> Crash { site; at = Rng.float rng profile.horizon }
    | `Step ->
        let step = Rng.int rng profile.max_steps in
        let sent = if Rng.bool rng then None else Some (Rng.int rng (n_sites + 1)) in
        Step_crash { site; step; sent }
    | `Backup ->
        let phase = if Rng.bool rng then Move else Decide in
        Backup_crash { site; phase; sent = Rng.int rng n_sites }
  in
  let recovery =
    if Rng.flip rng ~p:profile.p_recover then begin
      let base = match crash with Crash { at; _ } -> at | _ -> profile.horizon in
      let delay =
        profile.recover_delay_min
        +. Rng.float rng (profile.recover_delay_max -. profile.recover_delay_min)
      in
      Some (Recover { site; at = base +. delay })
    end
    else None
  in
  (* The [p_disk_fault > 0.0] short-circuit is load-bearing: with disk
     faults off this consumes zero draws, so the stream — and every
     schedule generated from it — is byte-identical to before the
     durability layer existed. *)
  let disk =
    let total = profile.torn_weight + profile.corrupt_weight + profile.lost_flush_weight in
    if profile.p_disk_fault > 0.0 && total > 0 && Rng.flip rng ~p:profile.p_disk_fault then begin
      let x = Rng.int rng total in
      if x < profile.torn_weight then
        (* this site's first crash of the run — the incident's own *)
        Some (Disk_fault { site; fault = Disk.Torn; nth = 0 })
      else if x < profile.torn_weight + profile.corrupt_weight then
        Some (Disk_fault { site; fault = Disk.Corrupt; nth = 0 })
      else
        Some (Disk_fault { site; fault = Disk.Lost_flush; nth = Rng.int rng profile.disk_sync_window })
    end
    else None
  in
  (crash, recovery, disk)

let gen_msg_fault rng profile =
  let total = profile.dup_weight + profile.delay_weight + profile.drop_weight in
  if total = 0 then None
  else begin
    let nth = Rng.int rng profile.send_window in
    let x = Rng.int rng total in
    let fault =
      if x < profile.dup_weight then World.Fault_duplicate
      else if x < profile.dup_weight + profile.delay_weight then
        World.Fault_delay (0.25 +. Rng.float rng profile.delay_max)
      else World.Fault_drop
    in
    Some (Msg { nth; fault })
  end

let gen_partition rng ~n_sites profile =
  if n_sites < 2 || not (Rng.flip rng ~p:profile.p_partition) then None
  else begin
    let from_t = Rng.float rng profile.horizon in
    let len =
      profile.partition_min_len
      +. Rng.float rng (profile.partition_max_len -. profile.partition_min_len)
    in
    (* isolate one site from the rest — the minimal, and per the paper the
       canonical, partition shape *)
    let isolated = 1 + Rng.int rng n_sites in
    let rest = List.filter (fun s -> s <> isolated) (List.init n_sites (fun i -> i + 1)) in
    Some (Partition { from_t; until_t = from_t +. len; groups = [ [ isolated ]; rest ] })
  end

(* One detector-fault window.  Each [p_X > 0.0] guard is load-bearing,
   like [p_disk_fault]'s: with the knob at its default 0 the generator
   consumes zero draws, so pre-detector schedules replay byte-identically. *)
let gen_window rng ~n_sites ~p profile =
  if p > 0.0 && Rng.flip rng ~p then begin
    let site = 1 + Rng.int rng n_sites in
    let from_t = Rng.float rng profile.horizon in
    let len =
      profile.detector_window_min
      +. Rng.float rng (profile.detector_window_max -. profile.detector_window_min)
    in
    Some (site, from_t, from_t +. len)
  end
  else None

let gen_delay_spike rng ~n_sites profile =
  match gen_window rng ~n_sites ~p:profile.p_delay_spike profile with
  | Some (site, from_t, until_t) ->
      let extra =
        profile.spike_extra_min
        +. Rng.float rng (profile.spike_extra_max -. profile.spike_extra_min)
      in
      Some (Delay_window { site; from_t; until_t; extra })
  | None -> None

let gen_stall rng ~n_sites profile =
  match gen_window rng ~n_sites ~p:profile.p_stall profile with
  | Some (site, from_t, until_t) -> Some (Stall { site; from_t; until_t })
  | None -> None

let gen_hb_loss rng ~n_sites profile =
  match gen_window rng ~n_sites ~p:profile.p_hb_loss profile with
  | Some (site, from_t, until_t) -> Some (Hb_loss { site; from_t; until_t })
  | None -> None

let generate rng ~n_sites ~k profile =
  if n_sites < 1 then invalid_arg "Nemesis.generate: need at least one site";
  if k < 0 then invalid_arg "Nemesis.generate: k must be >= 0";
  let n_incidents = if k = 0 then 0 else Rng.int rng (k + 2) in
  let sites = Rng.shuffle rng (List.init n_sites (fun i -> i + 1)) in
  let rec build taken intervals = function
    | [] -> ([], intervals)
    | _ when taken >= n_incidents -> ([], intervals)
    | site :: rest ->
        let crash, recovery, disk = gen_crash_incident rng ~n_sites ~site profile in
        let iv =
          match recovery with
          | Some (Recover { at; _ }) -> close_interval at (interval crash)
          | _ -> interval crash
        in
        let keep = match iv with None -> false | Some iv -> fits_k k intervals iv in
        if keep then
          let faults = (crash :: Option.to_list disk) @ Option.to_list recovery in
          let rest_faults, intervals =
            build (taken + 1)
              (match iv with Some iv -> iv :: intervals | None -> intervals)
              rest
          in
          (faults @ rest_faults, intervals)
        else build taken intervals rest
  in
  let crashes, crash_intervals = build 0 [] sites in
  let msg_faults =
    let m = Rng.int rng (profile.max_msg_faults + 1) in
    List.filter_map (fun _ -> gen_msg_fault rng profile) (List.init m Fun.id)
  in
  let partition = Option.to_list (gen_partition rng ~n_sites profile) in
  (* detector-fault draws come last so the stream prefix — and therefore
     every pre-detector schedule — is unchanged when the knobs are 0 *)
  let detector_faults =
    Option.to_list (gen_delay_spike rng ~n_sites profile)
    @ Option.to_list (gen_stall rng ~n_sites profile)
    @ Option.to_list (gen_hb_loss rng ~n_sites profile)
  in
  (* Paxos-fault draws come after everything else for the same reason the
     detector draws come after the crash draws: with the knobs at their
     default 0 this consumes nothing, so every earlier schedule — pinned
     seeds included — replays byte-identically with the Paxos code
     compiled in but unselected. *)
  let paxos_faults =
    let acceptor_crashes =
      if profile.p_acceptor_crash > 0.0 && profile.acceptor_sites <> []
         && profile.max_acceptor_crashes > 0
      then begin
        let order = Rng.shuffle rng profile.acceptor_sites in
        let rec take budget = function
          | [] -> []
          | _ when budget = 0 -> []
          | site :: rest ->
              if Rng.flip rng ~p:profile.p_acceptor_crash then
                Acceptor_crash { site; at = Rng.float rng profile.horizon }
                :: take (budget - 1) rest
              else take budget rest
        in
        take profile.max_acceptor_crashes order
      end
      else []
    in
    let lease =
      if profile.p_lease_fault > 0.0 && Rng.flip rng ~p:profile.p_lease_fault then
        [ Lease_fault { at = Rng.float rng profile.horizon } ]
      else []
    in
    acceptor_crashes @ lease
  in
  (* Storm draws come last of all — the [p_storm > 0.0] guard keeps every
     pre-storm schedule byte-identical, and the whole-envelope interval
     check keeps the ≤ k concurrency bound sound against the crash
     incidents drawn above. *)
  let storms =
    if k > 0 && profile.p_storm > 0.0 && Rng.flip rng ~p:profile.p_storm then begin
      let site = 1 + Rng.int rng n_sites in
      let first = Rng.float rng profile.horizon in
      let waves =
        profile.storm_waves_min
        + Rng.int rng (max 1 (profile.storm_waves_max - profile.storm_waves_min + 1))
      in
      let period =
        profile.storm_period_min
        +. Rng.float rng (profile.storm_period_max -. profile.storm_period_min)
      in
      let frac =
        profile.storm_down_frac_min
        +. Rng.float rng (profile.storm_down_frac_max -. profile.storm_down_frac_min)
      in
      let storm = Storm { site; first; waves; period; down = frac *. period } in
      match interval storm with
      | Some iv when fits_k k crash_intervals iv -> [ storm ]
      | Some _ | None -> []
    end
    else []
  in
  crashes @ partition @ detector_faults @ msg_faults @ paxos_faults @ storms

let to_string schedule =
  String.concat "\n" (List.map show_fault schedule)

let pp = pp_schedule
