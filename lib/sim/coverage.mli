(** Run-coverage accounting for the fault-space explorer.

    A finished chaos run is summarized as a {e fingerprint}: a small set
    of feature strings — protocol-state edges walked per site class,
    bucketed counter activity, oracle near-miss flags.  The accumulator
    remembers every feature ever seen across a search; a run is {e novel}
    iff it contributes at least one unseen feature, which is what the
    corpus ranks mutants by.

    Features are plain strings so the engine and database harnesses can
    each speak their own vocabulary without this module knowing either.
    Everything here is deterministic: no hashing of physical addresses,
    no ambient state. *)

type t
(** The feature accumulator of one search. *)

val create : unit -> t

val add : t -> string list -> int
(** [add t fingerprint] records every feature and returns how many of
    them were new to the accumulator (duplicates within the fingerprint
    count once). *)

val novel : t -> string list -> int
(** Like {!add} without recording: how many features the fingerprint
    would contribute. *)

val mem : t -> string -> bool
val count : t -> int
(** Distinct features seen so far — the "coverage edges" benches plot. *)

val features : t -> string list
(** Sorted, for stable reports. *)

(** {1 Fingerprint vocabulary helpers}

    Shared bucketing so the engine and kv harnesses produce comparable
    features: exact small counts collapse into log2 buckets above 4,
    times into coarse decades.  Both are total and monotone. *)

val bucket : int -> string
(** ["0"], ["1"], ..., ["4"], then ["le8"], ["le16"], ... — log2 buckets
    so a counter's feature space stays finite whatever the run did. *)

val edge : class_:string -> string -> string -> string
(** [edge ~class_ a b] names the protocol-state transition [a -> b]
    observed on a site of [class_] (e.g. coordinator vs participant):
    ["e:coord:q1->w1"]. *)

val feat : string -> string -> string
(** [feat key v] is ["key:v"] — counters, flags, terminal states. *)
