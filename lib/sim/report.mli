(** A run report: named JSON sections accumulated while a bench or
    experiment harness runs, written out as one machine-readable file
    (e.g. BENCH_results.json) for cross-run diffing. *)

type t

val schema_version : int

val create : ?bench_name:string -> unit -> t
(** [bench_name] stamps the report so cross-PR diffing tooling can key
    on which bench wrote a given BENCH_*.json. *)

val add : t -> string -> Json.t -> unit
(** [add t name json] appends section [name]; re-adding a name replaces
    its previous value in place. *)

val sections : t -> (string * Json.t) list
(** In insertion order. *)

val to_json : t -> Json.t
(** [{"schema_version": n, "bench_name": ..., <section>: ...}] in
    insertion order. *)

val write : t -> file:string -> unit
(** Write {!to_json} (compact, one line) to [file]. *)
