(** Ticket-based group-commit batcher over an abstract sync barrier.

    Coalesces concurrent WAL [force] calls on one device into shared
    syncs: callers enqueue a completion callback per record, one sync
    covers everything queued, and the callbacks fire — strictly in
    submission order — once the barrier completes.  Generic over the
    barrier (a [sync] thunk), so both {!Engine.Wal} and {!Kv.Kv_wal}
    instantiate it over their own {!Sim.Disk.sync}.

    Two orthogonal knobs: [group] ([max_batch] records per sync, at most
    [max_wait] simulated seconds of idle-device dawdling) and
    [sync_latency] (simulated seconds per sync — the cost being
    amortized; the underlying {!Sim.Disk.sync} itself is instantaneous
    in simulated time).  With neither, the batcher degrades to the
    synchronous sync-per-force discipline. *)

type group = { max_batch : int; max_wait : float }

type t

(** [create ?group ?sync_latency ~sync ()] builds a batcher over the
    barrier [sync].  Raises [Invalid_argument] on [max_batch < 1] or
    negative [max_wait]/[sync_latency]. *)
val create : ?group:group -> ?sync_latency:float -> sync:(unit -> unit) -> unit -> t

(** [attach t ~schedule ?on_flush ?on_drain ()] wires the batcher to a
    run: [schedule delay k] must run [k] after [delay] simulated seconds
    {e unless the owning site crashes first} (a site-bound
    {!Sim.World.set_timer}).  [on_flush ~batch] fires once per completed
    sync with the number of records it covered; [on_drain] fires after a
    batch's callbacks have run (admission-gate refill point).  Before
    attachment, submissions degrade to synchronous sync-per-force. *)
val attach :
  t ->
  schedule:(float -> (unit -> unit) -> unit) ->
  ?on_flush:(batch:int -> unit) ->
  ?on_drain:(unit -> unit) ->
  unit ->
  unit

(** [submit t k] enqueues a record's completion ticket: [k] runs after
    some future sync covers the record (immediately, when the batcher
    has neither grouping nor latency). *)
val submit : t -> (unit -> unit) -> unit

(** [barrier t k] runs [k] once everything currently queued is durable —
    immediately if nothing is pending.  Barriers carry no record and
    never force a sync of their own. *)
val barrier : t -> (unit -> unit) -> unit

(** Records submitted whose completion callback has not yet run. *)
val pending : t -> int

(** Synchronously make everything queued durable and run its callbacks,
    in order.  Interop for callers that need the old blocking force. *)
val flush_now : t -> unit

(** Drop every queued record and callback and fence off in-flight
    completions: after a crash, covered transactions never learn their
    force completed — exactly as a real crash loses an un-fsynced
    tail. *)
val crash : t -> unit
