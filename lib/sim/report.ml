(** A run report: named JSON sections accumulated while a bench or
    experiment harness runs, written out as one machine-readable file
    (e.g. BENCH_results.json) for cross-run diffing. *)

let schema_version = 1

type t = {
  bench_name : string option;
  mutable sections : (string * Json.t) list;  (** newest first *)
}

let create ?bench_name () = { bench_name; sections = [] }

let add t name json =
  if List.mem_assoc name t.sections then
    t.sections <-
      List.map (fun (n, j) -> if n = name then (n, json) else (n, j)) t.sections
  else t.sections <- (name, json) :: t.sections

let sections t = List.rev t.sections

let to_json t =
  let head =
    ("schema_version", Json.Int schema_version)
    ::
    (match t.bench_name with Some n -> [ ("bench_name", Json.Str n) ] | None -> [])
  in
  Json.Obj (head @ sections t)

let write t ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
