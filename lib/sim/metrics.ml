(** Simulation metrics: labelled counters, high-water-mark gauges,
    fixed-bucket histograms with percentile summaries, and labelled
    timers — collected per run, reported by the experiment harness, and
    exportable as JSON for cross-run perf diffing.

    Histograms use geometric buckets with O(1) insert and O(1) memory per
    label (replacing the unbounded per-sample list this module started
    with).  Exact count/total/min/max are tracked alongside the buckets,
    so mean/min/max stay exact; percentiles are bucket-interpolated and
    accurate to one bucket width (a factor of {!growth}). *)

(* ---------------- bucket layout ---------------- *)

(* Bucket 0 is [0, lowest); bucket i in 1..n-2 is
   [lowest*growth^(i-1), lowest*growth^i); the last bucket catches
   everything above.  lowest = 1e-3 and growth = 1.25 span 1e-3 .. ~1.3e6
   in 96 buckets — the full range of simulation times we record, with at
   most 25% relative error on a percentile. *)
let n_buckets = 96
let lowest = 1e-3
let growth = 1.25

let bucket_upper i =
  if i >= n_buckets - 1 then Float.infinity else lowest *. (growth ** float_of_int i)

let bucket_lower i = if i <= 0 then 0.0 else lowest *. (growth ** float_of_int (i - 1))

let bucket_index v =
  if not (v > 0.0) || v < lowest then 0
  else if not (Float.is_finite v) then n_buckets - 1
  else
    let i = 1 + int_of_float (Float.log (v /. lowest) /. Float.log growth) in
    (* float log can land one bucket off at exact boundaries: nudge *)
    let i = if i >= 1 && v < bucket_lower i then i - 1 else i in
    let i = if v >= bucket_upper i then i + 1 else i in
    if i < 0 then 0 else if i > n_buckets - 1 then n_buckets - 1 else i

(* ---------------- state ---------------- *)

type histogram = {
  mutable h_count : int;
  mutable h_total : float;
  mutable h_min : float;
  mutable h_max : float;
  counts : int array;
}

type summary = {
  count : int;
  total : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;  (** high-water marks *)
  hists : (string, histogram) Hashtbl.t;
  timers : (string * int, float) Hashtbl.t;  (** (label, key) -> start time *)
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
    timers = Hashtbl.create 16;
  }

(* ---------------- counters and gauges ---------------- *)

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters [] |> List.sort compare

let gauge_max t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.gauges name (ref v)

type gauge = int ref

let gauge_handle t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.gauges name r;
      r

let gauge_record (g : gauge) v = if v > !g then g := v

let gauge t name = match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0

let gauges t = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.gauges [] |> List.sort compare

(* ---------------- histograms ---------------- *)

let find_or_create_hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h =
        {
          h_count = 0;
          h_total = 0.0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
          counts = Array.make n_buckets 0;
        }
      in
      Hashtbl.add t.hists name h;
      h

let observe t name v =
  let h = find_or_create_hist t name in
  h.h_count <- h.h_count + 1;
  h.h_total <- h.h_total +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.counts.(i) <- h.counts.(i) + 1

let hist_percentile h p =
  if h.h_count = 0 then nan
  else if p <= 0.0 then h.h_min
  else if p >= 100.0 then h.h_max
  else begin
    let rank = p /. 100.0 *. float_of_int h.h_count in
    let est = ref h.h_max in
    (try
       let cum = ref 0.0 in
       for i = 0 to n_buckets - 1 do
         let c = h.counts.(i) in
         if c > 0 then begin
           let cum' = !cum +. float_of_int c in
           if cum' >= rank then begin
             let lo = bucket_lower i in
             let hi = if i = n_buckets - 1 || bucket_upper i > h.h_max then h.h_max else bucket_upper i in
             let frac = (rank -. !cum) /. float_of_int c in
             est := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           cum := cum'
         end
       done
     with Exit -> ());
    Float.min h.h_max (Float.max h.h_min !est)
  end

let percentile t name p =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h -> Some (hist_percentile h p)

let summarize t name : summary option =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h ->
      Some
        {
          count = h.h_count;
          total = h.h_total;
          min = h.h_min;
          max = h.h_max;
          mean = h.h_total /. float_of_int h.h_count;
          p50 = hist_percentile h 50.0;
          p90 = hist_percentile h 90.0;
          p99 = hist_percentile h 99.0;
        }

let buckets t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h ->
      let acc = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.counts.(i) > 0 then acc := (bucket_lower i, bucket_upper i, h.counts.(i)) :: !acc
      done;
      !acc

let histograms t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists []
  |> List.sort compare
  |> List.filter_map (fun k -> Option.map (fun s -> (k, s)) (summarize t k))

(* ---------------- labelled timers ---------------- *)

let timer_start t name ~key ~at = Hashtbl.replace t.timers (name, key) at

let timer_stop t name ~key ~at =
  match Hashtbl.find_opt t.timers (name, key) with
  | None -> ()
  | Some t0 ->
      Hashtbl.remove t.timers (name, key);
      observe t name (at -. t0)

let timer_discard t name ~key = Hashtbl.remove t.timers (name, key)

let timers_in_flight t =
  Hashtbl.fold (fun (name, _) _ acc -> (name, 1 + Option.value ~default:0 (List.assoc_opt name acc)) :: List.remove_assoc name acc) t.timers []
  |> List.sort compare

let drain_timers t =
  (* A timer started and never stopped — a site that crashed mid-measure —
     must not silently vanish from the registry: account each one under a
     per-label counter, then clear, so [merge] never sees a dangling
     start.  Idempotent once drained. *)
  List.iter
    (fun (name, n) -> incr ~by:n t ("timers_in_flight_" ^ name))
    (timers_in_flight t);
  Hashtbl.reset t.timers

(* ---------------- merge ---------------- *)

let merge dst src =
  (* Counters sum; gauges keep the overall high-water mark; histograms
     add bucket arrays element-wise with exact count/total and the
     combined min/max.  Deterministic: folding the same source
     registries in the same order always produces the same [dst], so a
     sharded sweep merged in seed order is reproducible whatever the
     worker count.  In-flight timers on either side are drained first —
     an interrupted measurement becomes a [timers_in_flight_<label>]
     counter instead of silently disappearing. *)
  drain_timers dst;
  List.iter (fun (name, n) -> incr ~by:n dst ("timers_in_flight_" ^ name)) (timers_in_flight src);
  List.iter (fun (name, v) -> incr ~by:v dst name) (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) src.counters [] |> List.sort compare);
  List.iter (fun (name, v) -> gauge_max dst name v) (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) src.gauges [] |> List.sort compare);
  List.iter
    (fun (name, h) ->
      let d = find_or_create_hist dst name in
      d.h_count <- d.h_count + h.h_count;
      d.h_total <- d.h_total +. h.h_total;
      if h.h_min < d.h_min then d.h_min <- h.h_min;
      if h.h_max > d.h_max then d.h_max <- h.h_max;
      Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.hists [] |> List.sort compare)

let merge_all srcs =
  let t = create () in
  List.iter (merge t) srcs;
  t

(* ---------------- rendering ---------------- *)

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-28s %d@," k v) (counters t);
  List.iter (fun (k, v) -> Fmt.pf ppf "%-28s max=%d@," k v) (gauges t);
  List.iter
    (fun (k, s) ->
      Fmt.pf ppf "%-28s n=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p90=%.3f p99=%.3f@," k s.count
        s.mean s.min s.max s.p50 s.p90 s.p99)
    (histograms t)

(* Names under the [wall_] prefix hold host wall-clock measurements
   (see {!Clock}): real time, different on every run.  Everything else
   is simulation-derived and deterministic in the seed, which is what
   sweep merge-equivalence checks compare. *)
let is_wall name = String.length name >= 5 && String.sub name 0 5 = "wall_"

let to_json ?(drop_wall = false) t : Json.t =
  let keep (name, _) = (not drop_wall) || not (is_wall name) in
  let hist_json (name, s) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int s.count);
          ("total", Json.Float s.total);
          ("min", Json.Float s.min);
          ("max", Json.Float s.max);
          ("mean", Json.Float s.mean);
          ("p50", Json.Float s.p50);
          ("p90", Json.Float s.p90);
          ("p99", Json.Float s.p99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (_, upper, count) ->
                   let upper = if upper = Float.infinity then s.max else upper in
                   Json.Obj [ ("le", Json.Float upper); ("count", Json.Int count) ])
                 (buckets t name)) );
        ] )
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (List.filter keep (counters t))));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (List.filter keep (gauges t))));
      ("histograms", Json.Obj (List.map hist_json (List.filter keep (histograms t))));
    ]
