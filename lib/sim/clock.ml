(** The one host clock for every wall-clock measurement in the tree.

    Simulation time lives in {!World.now}; everything measured about the
    host — bench rows, oracle timing, sweep throughput — must come
    through here.  [Sys.time] is process-wide {e CPU} time: under
    {!Sweep}'s domains it sums across workers and any histogram fed from
    it is garbage, so no timed path may call it (a lesson this module
    exists to pin).  [Unix.gettimeofday] is per-host wall time, which is
    what a parallel sweep actually spends. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (* gettimeofday is not formally monotonic: clamp so a stepped clock
     can never yield a negative duration *)
  (r, Float.max 0.0 (now () -. t0))
