(** A minimal JSON tree, emitter and parser — just enough for the
    observability layer (metrics export, bench run reports).  No external
    dependency: the container's opam switch has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- emission ---------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no NaN/infinity; emit null for them.  "%.12g" round-trips every
   float we produce (metrics are sums and quantiles of simulation times). *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* make sure it reads back as a float, not an int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ---------------- parsing ---------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* encode the code point as UTF-8 (BMP only — our emitter only
               produces \u00xx for control characters) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () = match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> () in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        members []
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---------------- accessors (for tests and report diffing) ---------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
