(** A simulated disk with an explicit sync barrier and injectable
    storage faults.

    [write] lands bytes in a volatile buffer; [sync] is the fsync
    barrier that makes everything written so far durable; [crash]
    discards whatever the last sync did not cover.  The paper's "write a
    record in stable storage" is [write] + [sync] — a protocol acting
    between the two is exposed to exactly the partial states its
    recovery protocol must handle.

    Faults are keyed to 0-based occurrence indices so a schedule
    replays deterministically; randomness (torn prefix length, flipped
    bit position) comes from a private per-disk stream, never the
    simulation's world RNG. *)

type fault =
  | Torn
      (** at the disk's nth [crash]: a strict prefix of the unsynced
          tail persists, possibly cutting a record in half *)
  | Corrupt
      (** at the nth [crash]: the unsynced tail persists in full with a
          single flipped bit *)
  | Lost_flush
      (** at the nth [sync]: the barrier lies — it reports success but
          the bytes only become durable at the next successful sync.
          Violates the paper's stable-storage axiom; an ablation, the
          storage analogue of a message drop. *)
[@@deriving show, eq, ord]

type injection = { fault : fault; nth : int } [@@deriving show, eq, ord]

type stats = {
  mutable writes : int;
  mutable syncs : int;
  mutable crashes : int;
  mutable torn_fired : int;
  mutable corrupt_fired : int;
  mutable lost_flushes : int;
}

type t

val create : seed:int -> unit -> t
val set_faults : t -> injection list -> unit
val stats : t -> stats

val write : t -> Bytes.t -> unit
val sync : t -> unit

val crash : t -> unit
(** Lose the unsynced tail (and any limbo a lying sync left behind),
    applying whichever [Torn]/[Corrupt] injection is armed for this
    crash index. *)

val truncate : t -> int -> unit
(** Cut the durable image back to its first [n] bytes — recovery repair,
    so appends after a torn/corrupt tail land after well-formed frames. *)

val contents : t -> Bytes.t
(** What a live reader sees: every acknowledged write, durable or not. *)

val durable_contents : t -> Bytes.t
(** Only what would survive a crash right now (fault effects aside). *)

val durable_bytes : t -> int
val pending_bytes : t -> int

val limbo_bytes : t -> int
(** Bytes a lying sync acknowledged without persisting. *)

(** Length-prefixed, CRC-32-checksummed record framing over raw bytes:
    the on-disk format of the write-ahead logs layered on this disk. *)
module Frame : sig
  val header_len : int
  val max_record : int

  val crc32 : Bytes.t -> off:int -> len:int -> int32
  (** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). *)

  val encode : Bytes.t -> Bytes.t
  (** [u32-LE length ∥ u32-LE crc ∥ payload]. *)

  type repair = { valid_records : int; dropped_bytes : int; reason : string option }
  [@@deriving show, eq]

  val clean : repair -> bool

  val scan : Bytes.t -> Bytes.t list * repair
  (** Walk a raw log image, stopping at the first invalid frame (short
      header, absurd length, torn body, checksum mismatch): returns the
      valid prefix's payloads and what was truncated, and why. *)
end
