(** Timeout-based failure suspicion over real {!World.send} traffic — the
    realistic replacement for the paper's reliable-detector oracle.

    Every site broadcasts a heartbeat each [heartbeat_period]; every
    delivered message (protocol traffic included) counts as evidence of
    life.  A peer silent for longer than [suspicion_timeout] is
    *suspected* ([on_suspect]); hearing from a suspected peer retracts
    the suspicion ([on_unsuspect]).  Unlike the oracle, a report is a
    revocable opinion — the layer above must stay safe when it is wrong.

    Suspecting a live peer bumps the [false_suspicions] counter; the
    crash-to-suspicion delay of a real crash lands in the
    [suspicion_latency] histogram.  A site waking from a
    {!World.schedule_stall} window refreshes its last-heard table rather
    than mass-suspecting peers whose messages were parked during the
    pause. *)

type site = World.site
type 'msg t

val create :
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  world:'msg World.t ->
  heartbeat:'msg ->
  is_heartbeat:('msg -> bool) ->
  on_suspect:('msg World.ctx -> site -> unit) ->
  on_unsuspect:('msg World.ctx -> site -> unit) ->
  unit ->
  'msg t
(** Defaults: heartbeat every 1.0, suspect after 5.0 of silence.
    Registers a crash hook on [world] for latency accounting.
    @raise Invalid_argument if [suspicion_timeout <= heartbeat_period]. *)

val start : 'msg t -> 'msg World.ctx -> unit
(** Arm the calling site's heartbeat and check timers and reset its view.
    Call exactly once per incarnation: from [on_start] and again from
    [on_restart] (the crashed incarnation's timers are already dead). *)

val heard : 'msg t -> self:site -> src:site -> unit
(** Feed one delivered message's provenance to the detector.  Call from
    [on_message] for every message, heartbeat or protocol.  Messages from
    the environment (site 0) are ignored. *)

val is_heartbeat : 'msg t -> 'msg -> bool
val suspects : 'msg t -> self:site -> site list
val is_suspected : 'msg t -> self:site -> peer:site -> bool
