(** Capped exponential backoff with jitter — the one retry policy every
    outcome-query loop shares.

    Both the protocol engine's termination queries and the database's
    status polls retry at [interval * 2^attempt], capped at [cap], plus a
    uniform jitter of up to a quarter of the backoff so synchronized
    sites do not stampede a recovering peer.  The exponent saturates at
    12 to keep the float finite long before the cap applies. *)

val delay : rng:Rng.t -> interval:float -> cap:float -> attempt:int -> float
(** [delay ~rng ~interval ~cap ~attempt] is the wait before retry number
    [attempt] (0-based).  Consumes exactly one draw from [rng] — callers
    pin replay determinism on that. *)
