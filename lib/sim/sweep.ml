(** Domain-sharded seed sweeps.

    Seeds are embarrassingly parallel: every run in this tree is a pure
    function of its seed, executing against its own {!World}, its own
    {!Metrics} registry and its own {!Rng} stream — no per-run state is
    ambient.  This module exploits that: [map] shards a seed range
    across OCaml 5 domains, each worker pulling the next unclaimed seed
    from a shared atomic cursor, and returns the results in seed order.

    Determinism is the contract.  The result array is indexed by seed
    offset, so which worker happened to run a seed is unobservable:
    [map ~workers:4] returns exactly what [map ~workers:1] returns, and
    a caller that folds per-seed {!Metrics} registries in array order
    (see {!Metrics.merge}) gets byte-identical merged output whatever
    the worker count.  [workers = 1] does not spawn at all — it is the
    plain sequential loop.

    The isolation invariant callers must keep: the sweep function [f]
    must derive everything mutable it touches from [seed] alone.
    Sharing a read-only compiled {!Engine.Rulebook} across workers is
    fine; sharing a metrics registry, a world or an RNG is not. *)

let available_workers () = Domain.recommended_domain_count ()

let map (type a) ?(workers = 1) ?(seed_base = 0) ~seeds (f : seed:int -> a) : a array =
  if seeds < 0 then invalid_arg "Sweep.map: seeds must be >= 0";
  if workers < 1 then invalid_arg "Sweep.map: workers must be >= 1";
  let workers = min workers (max 1 seeds) in
  if workers = 1 then Array.init seeds (fun i -> f ~seed:(seed_base + i))
  else begin
    let results : a option array = Array.make seeds None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < seeds then begin
        (* each slot is written by exactly one domain and read only
           after the joins below: no data race *)
        results.(i) <- Some (f ~seed:(seed_base + i));
        worker ()
      end
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (match worker () with
    | () -> List.iter Domain.join domains
    | exception e ->
        (* drain the cursor so helpers stop, then surface the failure *)
        Atomic.set next seeds;
        List.iter (fun d -> try Domain.join d with _ -> ()) domains;
        raise e);
    Array.map (function Some v -> v | None -> assert false) results
  end

let sweep ?workers ?seed_base ~seeds (f : metrics:Metrics.t -> seed:int -> 'a) =
  (* One fresh registry per seed, timer-drained at run end, merged in
     seed order: full run isolation with a deterministic aggregate. *)
  let runs =
    map ?workers ?seed_base ~seeds (fun ~seed ->
        let metrics = Metrics.create () in
        let v = f ~metrics ~seed in
        Metrics.drain_timers metrics;
        (v, metrics))
  in
  let merged = Metrics.create () in
  Array.iter (fun (_, m) -> Metrics.merge merged m) runs;
  (Array.map fst runs, merged)
