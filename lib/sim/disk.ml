(** A simulated disk with an explicit sync barrier.

    The model mirrors what a real log device gives a commit protocol:
    [write] lands bytes in a volatile buffer, [sync] is the fsync barrier
    that makes everything written so far durable, and [crash] discards
    whatever the last sync did not cover.  The paper's "write a record in
    stable storage" is therefore [write] + [sync]; a protocol that sends
    messages between the two is exposed to exactly the
    partial-transition states §"Site failures" reasons about.

    Three storage faults can be injected, each keyed to a 0-based
    occurrence index so a schedule replays deterministically:

    - [Torn] (at the disk's nth crash): the unsynced tail is not lost
      cleanly — a strict prefix of it reaches the platter, possibly
      cutting a record in half.
    - [Corrupt] (at the nth crash): the unsynced tail persists in full
      but with a single flipped bit.
    - [Lost_flush] (at the nth sync): the fsync lies.  It reports
      success but the data only reaches the platter at the next
      successful sync; a crash before that loses bytes the caller was
      told were durable.  This violates the paper's stable-storage
      axiom — it exists as an ablation, the storage analogue of message
      drops.

    Randomness (torn prefix length, corrupted bit position) comes from a
    private per-disk stream so arming or firing faults never perturbs
    the simulation's world RNG. *)

type fault = Torn | Corrupt | Lost_flush [@@deriving show { with_path = false }, eq, ord]

type injection = { fault : fault; nth : int } [@@deriving show { with_path = false }, eq, ord]

type stats = {
  mutable writes : int;
  mutable syncs : int;
  mutable crashes : int;
  mutable torn_fired : int;
  mutable corrupt_fired : int;
  mutable lost_flushes : int;
}

type t = {
  durable : Buffer.t;  (** on the platter: survives any crash *)
  limbo : Buffer.t;
      (** acknowledged by a lying sync but still volatile: flushed by the
          next successful sync, lost by a crash *)
  pending : Buffer.t;  (** written, not yet covered by any sync *)
  rng : Rng.t;
  mutable injections : injection list;
  stats : stats;
}

let create ~seed () =
  {
    durable = Buffer.create 256;
    limbo = Buffer.create 16;
    pending = Buffer.create 64;
    rng = Rng.create ~seed;
    injections = [];
    stats =
      { writes = 0; syncs = 0; crashes = 0; torn_fired = 0; corrupt_fired = 0; lost_flushes = 0 };
  }

let set_faults t injections = t.injections <- injections
let stats t = t.stats
let durable_bytes t = Buffer.length t.durable
let pending_bytes t = Buffer.length t.pending
let limbo_bytes t = Buffer.length t.limbo

let write t b =
  t.stats.writes <- t.stats.writes + 1;
  Buffer.add_bytes t.pending b

let sync t =
  let lying =
    List.exists (fun i -> i.fault = Lost_flush && i.nth = t.stats.syncs) t.injections
  in
  t.stats.syncs <- t.stats.syncs + 1;
  if lying then begin
    (* the barrier reports success without reaching the platter: the
       bytes join the limbo the next successful sync will flush *)
    if Buffer.length t.pending > 0 then t.stats.lost_flushes <- t.stats.lost_flushes + 1;
    Buffer.add_buffer t.limbo t.pending;
    Buffer.clear t.pending
  end
  else begin
    Buffer.add_buffer t.durable t.limbo;
    Buffer.clear t.limbo;
    Buffer.add_buffer t.durable t.pending;
    Buffer.clear t.pending
  end

(* what a live reader sees: every acknowledged write, durable or not *)
(* recovery repair: cut the durable image back to its valid prefix so
   later appends land after well-formed frames, not after garbage *)
let truncate t n =
  if n < Buffer.length t.durable then begin
    let b = Buffer.to_bytes t.durable in
    Buffer.clear t.durable;
    Buffer.add_subbytes t.durable b 0 n
  end

let contents t =
  let b = Buffer.create (Buffer.length t.durable + Buffer.length t.limbo + Buffer.length t.pending) in
  Buffer.add_buffer b t.durable;
  Buffer.add_buffer b t.limbo;
  Buffer.add_buffer b t.pending;
  Buffer.to_bytes b

let durable_contents t = Buffer.to_bytes t.durable

let crash t =
  let n = t.stats.crashes in
  t.stats.crashes <- n + 1;
  let tail = Bytes.cat (Buffer.to_bytes t.limbo) (Buffer.to_bytes t.pending) in
  Buffer.clear t.limbo;
  Buffer.clear t.pending;
  let len = Bytes.length tail in
  if len > 0 then
    match
      List.find_opt (fun i -> i.nth = n && (i.fault = Torn || i.fault = Corrupt)) t.injections
    with
    | Some { fault = Torn; _ } ->
        t.stats.torn_fired <- t.stats.torn_fired + 1;
        (* a strict prefix reaches the platter — possibly mid-record *)
        let keep = Rng.int t.rng len in
        Buffer.add_subbytes t.durable tail 0 keep
    | Some { fault = Corrupt; _ } ->
        t.stats.corrupt_fired <- t.stats.corrupt_fired + 1;
        let bit = Rng.int t.rng (len * 8) in
        let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
        Bytes.set tail byte (Char.chr (Char.code (Bytes.get tail byte) lxor mask));
        Buffer.add_bytes t.durable tail
    | _ -> ()

(* ---------------- the record framing over raw bytes ---------------- *)

module Frame = struct
  (* u32-LE payload length, u32-LE CRC-32 of the payload, payload *)

  let header_len = 8
  let max_record = 1 lsl 20

  (* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             c :=
               if Int32.logand !c 1l <> 0l then
                 Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
               else Int32.shift_right_logical !c 1
           done;
           !c))

  let crc32 b ~off ~len =
    let t = Lazy.force table in
    let c = ref 0xFFFFFFFFl in
    for i = off to off + len - 1 do
      let idx = Int32.to_int (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) land 0xff in
      c := Int32.logxor (Int32.shift_right_logical !c 8) t.(idx)
    done;
    Int32.logxor !c 0xFFFFFFFFl

  let encode payload =
    let len = Bytes.length payload in
    let out = Bytes.create (header_len + len) in
    Bytes.set_int32_le out 0 (Int32.of_int len);
    Bytes.set_int32_le out 4 (crc32 payload ~off:0 ~len);
    Bytes.blit payload 0 out header_len len;
    out

  type repair = { valid_records : int; dropped_bytes : int; reason : string option }
  [@@deriving show { with_path = false }, eq]

  let clean r = r.reason = None

  (** Scan a raw log image, stopping (and truncating) at the first frame
      that fails validation: a short header, an absurd length, a body
      running past the image, or a checksum mismatch.  Everything before
      the bad frame is returned; [repair] says what was cut and why. *)
  let scan b =
    let total = Bytes.length b in
    let stop off acc n reason =
      (List.rev acc, { valid_records = n; dropped_bytes = total - off; reason = Some reason })
    in
    let rec go off acc n =
      if off = total then (List.rev acc, { valid_records = n; dropped_bytes = 0; reason = None })
      else if total - off < header_len then stop off acc n "torn header"
      else
        let len = Int32.to_int (Bytes.get_int32_le b off) in
        if len < 0 || len > max_record then
          stop off acc n (Fmt.str "absurd record length %d" len)
        else if total - off - header_len < len then stop off acc n "torn record body"
        else
          let stored = Bytes.get_int32_le b (off + 4) in
          let actual = crc32 b ~off:(off + header_len) ~len in
          if not (Int32.equal stored actual) then stop off acc n "checksum mismatch"
          else go (off + header_len + len) (Bytes.sub b (off + header_len) len :: acc) (n + 1)
    in
    go 0 [] 0
end
