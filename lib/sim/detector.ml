(** Timeout-based failure suspicion over real {!World.send} traffic.

    The paper assumes the network *reliably* reports failures; this module
    is the realistic replacement: every site periodically broadcasts a
    heartbeat message, counts every delivered message (protocol or
    heartbeat) as evidence its sender is up, and *suspects* a peer it has
    not heard from within the suspicion timeout.  Hearing from a suspected
    peer again retracts the suspicion ([on_unsuspect]) — unlike the
    oracle, a report here is a revocable opinion, not a fact.

    Stall-wake grace: a site returning from a "GC pause"
    ({!World.schedule_stall}) sees its deferred check timer fire *late*.
    At that moment its own clocks of every peer are stale even though the
    peers were talking the whole time, so a late check refreshes the
    last-heard table instead of mass-suspecting the world.  (The peers
    suspecting the *stalled* site is the interesting, correct behaviour;
    the waking site suspecting everyone else would be pure noise.)

    Accounting: suspecting a site that is actually alive increments the
    [false_suspicions] counter; suspecting one that really crashed
    records the crash-to-suspicion delay in the [suspicion_latency]
    histogram (crash instants observed via {!World.add_crash_hook}). *)

type site = World.site

type 'msg per_site = {
  last_heard : float array;  (** index: peer site; absolute sim time *)
  suspected : bool array;
}

type 'msg t = {
  world : 'msg World.t;
  heartbeat_period : float;
  suspicion_timeout : float;
  heartbeat : 'msg;
  is_heartbeat : 'msg -> bool;
  on_suspect : 'msg World.ctx -> site -> unit;
  on_unsuspect : 'msg World.ctx -> site -> unit;
  state : 'msg per_site array;  (** index: the observing site *)
  crashed_at : float array;  (** last real crash instant per site, -1 if never *)
}

let create ?(heartbeat_period = 1.0) ?(suspicion_timeout = 5.0) ~world ~heartbeat ~is_heartbeat
    ~on_suspect ~on_unsuspect () =
  if suspicion_timeout <= heartbeat_period then
    invalid_arg "Detector.create: suspicion_timeout must exceed heartbeat_period";
  let n = List.length (World.sites world) in
  let t =
    {
      world;
      heartbeat_period;
      suspicion_timeout;
      heartbeat;
      is_heartbeat;
      on_suspect;
      on_unsuspect;
      state =
        Array.init (n + 1) (fun _ ->
            { last_heard = Array.make (n + 1) 0.0; suspected = Array.make (n + 1) false });
      crashed_at = Array.make (n + 1) (-1.0);
    }
  in
  World.add_crash_hook world (fun s -> t.crashed_at.(s) <- World.now world);
  t

let is_heartbeat t m = t.is_heartbeat m

let suspects t ~self =
  let st = t.state.(self) in
  List.filter (fun p -> st.suspected.(p)) (World.sites t.world)

let is_suspected t ~self ~peer = t.state.(self).suspected.(peer)

let peers t self = List.filter (fun p -> p <> self) (World.sites t.world)

let suspect t (ctx : 'msg World.ctx) peer =
  let st = t.state.(ctx.World.self) in
  st.suspected.(peer) <- true;
  let m = World.metrics t.world in
  if World.is_alive t.world peer then begin
    Metrics.incr m "false_suspicions";
    World.record t.world "site %d FALSELY suspects site %d (timeout)" ctx.World.self peer
  end
  else begin
    World.record t.world "site %d suspects site %d (timeout)" ctx.World.self peer;
    if t.crashed_at.(peer) >= 0.0 then
      Metrics.observe m "suspicion_latency" (World.now t.world -. t.crashed_at.(peer))
  end;
  t.on_suspect ctx peer

let unsuspect t (ctx : 'msg World.ctx) peer =
  let st = t.state.(ctx.World.self) in
  st.suspected.(peer) <- false;
  World.record t.world "site %d retracts suspicion of site %d" ctx.World.self peer;
  t.on_unsuspect ctx peer

(* Evidence of life: every delivered message counts, whatever its kind. *)
let heard t ~self ~src =
  if src >= 1 && src < Array.length t.state then begin
    let st = t.state.(self) in
    st.last_heard.(src) <- World.now t.world;
    if st.suspected.(src) then unsuspect t { World.world = t.world; self } src
  end

let beat t (ctx : 'msg World.ctx) =
  if not (World.hb_suppressed t.world ctx.World.self) then
    World.broadcast ctx ~dsts:(peers t ctx.World.self) t.heartbeat

let rec arm_heartbeat t (ctx : 'msg World.ctx) =
  ignore
    (World.set_timer ctx ~delay:t.heartbeat_period (fun () ->
         beat t ctx;
         arm_heartbeat t ctx))

(* Lateness beyond this means the timer was deferred (a stall window):
   discrete-event timers otherwise fire exactly on schedule. *)
let stall_grace = 1e-9

let rec arm_check t (ctx : 'msg World.ctx) =
  let expected = World.now t.world +. t.heartbeat_period in
  ignore
    (World.set_timer ctx ~delay:t.heartbeat_period (fun () ->
         let self = ctx.World.self in
         let st = t.state.(self) in
         let now = World.now t.world in
         if now > expected +. stall_grace then begin
           (* waking from a stall: our silence was ours, not theirs *)
           World.record t.world "site %d wakes from a stall; refreshing peer clocks" self;
           List.iter (fun p -> st.last_heard.(p) <- now) (peers t self)
         end
         else
           List.iter
             (fun p ->
               if (not st.suspected.(p)) && now -. st.last_heard.(p) > t.suspicion_timeout then
                 suspect t ctx p)
             (peers t self);
         arm_check t ctx))

(** Call exactly once per incarnation — from [on_start] and again from
    [on_restart].  Resets the site's view (a recovering site starts from a
    clean, unsuspecting slate) and arms the heartbeat/check timer chains;
    the previous incarnation's chains died with the crash (the world's
    timer generation check), so re-arming cannot double them. *)
let start t (ctx : 'msg World.ctx) =
  let self = ctx.World.self in
  let st = t.state.(self) in
  let now = World.now t.world in
  List.iter
    (fun p ->
      st.last_heard.(p) <- now;
      st.suspected.(p) <- false)
    (peers t self);
  beat t ctx;
  arm_heartbeat t ctx;
  arm_check t ctx
