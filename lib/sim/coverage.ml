(** Run-coverage accounting for the fault-space explorer: an accumulator
    of feature strings plus the shared fingerprint vocabulary.  See the
    interface for the contract; the representation is a plain string
    hash table — features are short and a search touches at most a few
    thousand of them. *)

type t = (string, unit) Hashtbl.t

let create () : t = Hashtbl.create 256

let dedup fingerprint = List.sort_uniq compare fingerprint

let novel t fingerprint =
  List.length (List.filter (fun f -> not (Hashtbl.mem t f)) (dedup fingerprint))

let add t fingerprint =
  List.fold_left
    (fun fresh f ->
      if Hashtbl.mem t f then fresh
      else begin
        Hashtbl.replace t f ();
        fresh + 1
      end)
    0 (dedup fingerprint)

let mem t f = Hashtbl.mem t f
let count t = Hashtbl.length t
let features t = Hashtbl.fold (fun f () acc -> f :: acc) t [] |> List.sort compare

(* Exact up to 4, then log2 buckets: a counter that ran away still maps
   to a handful of features, so coverage growth measures behaviours, not
   magnitudes. *)
let bucket n =
  if n <= 4 then string_of_int (max 0 n)
  else begin
    let rec ceil_pow2 p = if p >= n then p else ceil_pow2 (2 * p) in
    Printf.sprintf "le%d" (ceil_pow2 8)
  end

let edge ~class_ a b = Printf.sprintf "e:%s:%s->%s" class_ a b
let feat key v = Printf.sprintf "%s:%s" key v
