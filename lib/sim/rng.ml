(** Deterministic pseudo-random numbers (splitmix64).

    Every source of randomness in a simulation flows from one seed, so any
    run — including every Monte-Carlo experiment — is exactly replayable
    from its seed. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let rec split t =
  (* Consumes one draw from the parent: successive splits must yield
     distinct streams, and drawing from a child must not perturb the
     parent beyond that single draw. *)
  let x = next_int64 t in
  let open Int64 in
  { state = logxor (mul x 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L }

and next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] draws uniformly from [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

(** [float t bound] draws uniformly from [0, bound). *)
let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [choice t l] picks a uniform element of the non-empty list [l]. *)
let choice t l =
  match l with
  | [] -> invalid_arg "Rng.choice: empty list"
  | _ -> List.nth l (int t (List.length l))

(** Bernoulli draw with success probability [p]. *)
let flip t ~p = float t 1.0 < p

(** Exponentially distributed draw with the given [mean]. *)
let exponential t ~mean = -.mean *. log (1.0 -. float t 1.0)

(** Fisher–Yates shuffle (fresh list). *)
let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
