(** The simulated distributed system.

    Implements exactly the paper's environmental assumptions (§"Design
    assumptions"): the network provides point-to-point communication and
    never fails; it can detect the failure of a site and reliably report it
    to every operational site.  Sites fail by crashing (fail-stop) and may
    later recover with their stable storage intact.

    Determinism: every run is a pure function of the seed — event ties are
    broken by sequence number and all randomness flows from {!Rng}.

    Partial state transitions (paper §"Site failures and atomicity of local
    state transitions") are expressible: a handler may call {!crash_self}
    between two [send]s, after which its remaining sends are dropped — the
    site "transmitted only part of the messages" of the transition. *)

type site = int

type 'msg event =
  | Deliver of { src : site; dst : site; dst_gen : int; msg : 'msg }
  | Timer of { site : site; gen : int; id : int; callback : unit -> unit }
  | Crash of site
  | Recover of site
  | Detect_down of { observer : site; failed : site }
  | Detect_up of { observer : site; recovered : site }
  | False_down of { observer : site; suspect : site }
      (** a partition makes the detector wrongly report a live site as
          failed — the violation of the paper's reliability assumption *)

type msg_fault = Fault_drop | Fault_duplicate | Fault_delay of float [@@deriving show { with_path = false }, eq]

type trace_entry = { at : float; what : string }

type 'msg handlers = {
  on_start : 'msg ctx -> unit;  (** called once at time 0 *)
  on_message : 'msg ctx -> src:site -> 'msg -> unit;
  on_peer_down : 'msg ctx -> site -> unit;  (** reliable failure report *)
  on_peer_up : 'msg ctx -> site -> unit;  (** reliable recovery report *)
  on_restart : 'msg ctx -> unit;  (** this site restarts after a crash *)
}

and 'msg t = {
  n_sites : int;
  mutable now : float;
  queue : 'msg event Eventq.t;
  alive : bool array;
  generation : int array;  (** incarnation number; bumped on crash *)
  mutable handlers : (site -> 'msg handlers) option;
  latency : 'msg t -> src:site -> dst:site -> float;
  detection_delay : float;
  rng : Rng.t;
  metrics : Metrics.t;
  msg_to_string : 'msg -> string;
  mutable trace : trace_entry list;  (** reverse order *)
  mutable tracing : bool;
  mutable next_timer_id : int;
  cancelled_timers : (int, unit) Hashtbl.t;
      (** ids cancelled before their fire time; an id is removed when its
          timer event dispatches (fired or skipped), so membership tests
          and memory stay O(1) no matter how many timers a run cancels *)
  mutable stopped : bool;
  mutable partitions : partition list;
  mutable send_seq : int;
      (** global count of send attempts from live senders; the key space
          of the message-fault schedule below *)
  msg_faults : (int, msg_fault) Hashtbl.t;
  mutable crash_hooks : (site -> unit) list;
      (** invoked (registration order) at the instant a site crashes,
          before anything observes the failure: the durability layer loses
          its unsynced tail here, the failure detector timestamps the
          crash for suspicion-latency accounting *)
  mutable delay_windows : window list;
      (** latency spikes: extra delay on sends touching a site *)
  mutable stall_windows : window list;
      (** "GC pauses": events targeting the site are deferred to window end *)
  mutable hb_loss_windows : window list;
      (** heartbeat-loss bursts, queried by the failure detector *)
}

and window = { w_site : site; w_from : float; w_until : float; w_extra : float }

and partition = { p_from : float; p_until : float; p_group : (site * int) list }

and 'msg ctx = { world : 'msg t; self : site }

let default_latency world ~src:_ ~dst:_ = 1.0 +. Rng.float world.rng 0.1

(** [create ~n_sites ~seed ~msg_to_string ()] builds a world of [n_sites]
    sites (numbered 1..n), all initially operational.

    @param latency per-message delay; default 1.0 + U(0, 0.1)
    @param detection_delay how long after a crash the detector reports it;
           default 2.0 *)
let create ?(latency = default_latency) ?(detection_delay = 2.0) ~n_sites ~seed ~msg_to_string () =
  if n_sites < 1 then invalid_arg "World.create: need at least one site";
  {
    n_sites;
    now = 0.0;
    queue = Eventq.create ();
    alive = Array.make (n_sites + 1) true;
    generation = Array.make (n_sites + 1) 0;
    handlers = None;
    latency;
    detection_delay;
    rng = Rng.create ~seed;
    metrics = Metrics.create ();
    msg_to_string;
    trace = [];
    tracing = false;
    next_timer_id = 0;
    cancelled_timers = Hashtbl.create 64;
    stopped = false;
    partitions = [];
    send_seq = 0;
    msg_faults = Hashtbl.create 16;
    crash_hooks = [];
    delay_windows = [];
    stall_windows = [];
    hb_loss_windows = [];
  }

let now w = w.now
let rng w = w.rng
let metrics w = w.metrics
let sites w = List.init w.n_sites (fun i -> i + 1)
let set_tracing w b = w.tracing <- b

let trace_entries w = List.rev w.trace

(* Check [tracing] before formatting: with tracing off (the common case —
   every send/deliver/drop on every simulated event goes through here)
   the format arguments must cost nothing.  [ikfprintf] consumes them
   without rendering. *)
let record w fmt =
  if w.tracing then
    Fmt.kstr (fun s -> w.trace <- { at = w.now; what = s } :: w.trace) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let check_site w s =
  if s < 1 || s > w.n_sites then Fmt.invalid_arg "World: site %d out of range 1..%d" s w.n_sites

(** The perfect failure detector's current view, queryable by any site. *)
let is_alive w s =
  check_site w s;
  w.alive.(s)

let operational_sites w = List.filter (is_alive w) (sites w)

(* Are [a] and [b] currently separated by an active partition? *)
let separated w a b =
  a <> b
  && List.exists
       (fun p ->
         w.now >= p.p_from && w.now < p.p_until
         &&
         match (List.assoc_opt a p.p_group, List.assoc_opt b p.p_group) with
         | Some ga, Some gb -> ga <> gb
         | _ -> false)
       w.partitions

(** [schedule_partition w ~from_t ~until_t groups] splits the network into
    the given site groups during [from_t, until_t): messages between
    groups are silently dropped, and — the crucial violation of the
    paper's assumption — after the detection delay each side's failure
    detector wrongly reports the other side's sites as failed.  When the
    partition heals the detector issues recovery reports. *)
let schedule_partition w ~from_t ~until_t groups =
  let p_group = List.concat (List.mapi (fun g ss -> List.map (fun s -> (s, g)) ss) groups) in
  List.iter (fun (s, _) -> check_site w s) p_group;
  w.partitions <- { p_from = from_t; p_until = until_t; p_group } :: w.partitions;
  List.iter
    (fun (a, ga) ->
      List.iter
        (fun (b, gb) ->
          if a <> b && ga <> gb then begin
            Eventq.push w.queue ~time:(from_t +. w.detection_delay)
              (False_down { observer = a; suspect = b });
            Eventq.push w.queue ~time:(until_t +. w.detection_delay)
              (Detect_up { observer = a; recovered = b })
          end)
        p_group)
    p_group

let handlers_for w s =
  match w.handlers with
  | Some f -> f s
  | None -> invalid_arg "World: no handlers registered"

(** [send ctx ~dst msg] puts [msg] on the wire.  Messages from a crashed
    sender are dropped (models partial transmission when a handler crashes
    itself mid-broadcast); messages sent across an active partition are
    silently dropped at the sending edge (the partition decision belongs
    to the moment of transmission — a partition that heals before arrival
    does not resurrect the message, and a message already in flight when
    a partition starts is not retroactively lost); messages reach [dst]
    only if it is still the same incarnation when the message arrives. *)
let set_msg_faults w faults =
  Hashtbl.reset w.msg_faults;
  List.iter (fun (nth, f) -> Hashtbl.replace w.msg_faults nth f) faults

let sends_attempted w = w.send_seq
let add_crash_hook w f = w.crash_hooks <- w.crash_hooks @ [ f ]
let set_crash_hook w f = add_crash_hook w f

(* ---- detector-fault windows ---- *)

let in_window w site windows =
  List.exists (fun win -> win.w_site = site && w.now >= win.w_from && w.now < win.w_until) windows

(** [schedule_latency_spike w ~site ~from_t ~until_t ~extra] adds [extra]
    latency to every message sent from or to [site] while the window is
    open (judged at send time, like partitions).  Does not consume
    message-fault indices, so armed fault schedules replay unchanged. *)
let schedule_latency_spike w ~site ~from_t ~until_t ~extra =
  check_site w site;
  w.delay_windows <- { w_site = site; w_from = from_t; w_until = until_t; w_extra = extra } :: w.delay_windows

let spike_extra w ~src ~dst =
  List.fold_left
    (fun acc win ->
      if
        (win.w_site = src || win.w_site = dst)
        && w.now >= win.w_from && w.now < win.w_until
      then acc +. win.w_extra
      else acc)
    0.0 w.delay_windows

(** [schedule_stall w ~site ~from_t ~until_t] freezes [site] — a "GC
    pause": deliveries and timers targeting it while the window is open
    are deferred to the window's end instead of dispatching.  The site
    does not crash; peers simply stop hearing from it. *)
let schedule_stall w ~site ~from_t ~until_t =
  check_site w site;
  w.stall_windows <- { w_site = site; w_from = from_t; w_until = until_t; w_extra = 0.0 } :: w.stall_windows

let stalled_until w site =
  List.fold_left
    (fun acc win ->
      if win.w_site = site && w.now >= win.w_from && w.now < win.w_until then
        match acc with
        | Some u -> Some (Float.max u win.w_until)
        | None -> Some win.w_until
      else acc)
    None w.stall_windows

(** [schedule_hb_loss w ~site ~from_t ~until_t] suppresses failure-detector
    heartbeats sent by [site] during the window.  Protocol messages are
    untouched — the channel stays reliable while the detector starves,
    which is exactly the false-suspicion scenario. *)
let schedule_hb_loss w ~site ~from_t ~until_t =
  check_site w site;
  w.hb_loss_windows <- { w_site = site; w_from = from_t; w_until = until_t; w_extra = 0.0 } :: w.hb_loss_windows

let hb_suppressed w site = in_window w site w.hb_loss_windows

let send ctx ~dst msg =
  let w = ctx.world in
  check_site w dst;
  if w.alive.(ctx.self) then begin
    (* Every send attempt from a live sender consumes one index of the
       fault schedule, whether or not a partition then drops it — the
       numbering must not depend on partition state. *)
    let nth = w.send_seq in
    w.send_seq <- nth + 1;
    Metrics.incr w.metrics "messages_sent";
    if separated w ctx.self dst then begin
      Metrics.incr w.metrics "messages_partitioned";
      record w "partition drops %d->%d %s" ctx.self dst (w.msg_to_string msg)
    end
    else begin
      let enqueue ?(extra = 0.0) () =
        let delay = w.latency w ~src:ctx.self ~dst in
        (* latency spikes are judged at send time, like partitions; with no
           windows armed the sum is exactly 0.0 and the delivery time is
           bit-identical to a spike-free run *)
        let spike = spike_extra w ~src:ctx.self ~dst in
        Eventq.push w.queue ~time:(w.now +. delay +. extra +. spike)
          (Deliver { src = ctx.self; dst; dst_gen = w.generation.(dst); msg })
      in
      match Hashtbl.find_opt w.msg_faults nth with
      | Some Fault_drop ->
          Metrics.incr w.metrics "messages_chaos_dropped";
          record w "chaos drops send #%d %d->%d %s" nth ctx.self dst (w.msg_to_string msg)
      | Some Fault_duplicate ->
          Metrics.incr w.metrics "messages_duplicated";
          record w "send %d->%d %s (chaos duplicates #%d)" ctx.self dst (w.msg_to_string msg) nth;
          enqueue ();
          enqueue ()
      | Some (Fault_delay extra) ->
          Metrics.incr w.metrics "messages_chaos_delayed";
          record w "send %d->%d %s (chaos delays #%d by %.2f)" ctx.self dst (w.msg_to_string msg)
            nth extra;
          enqueue ~extra ()
      | None ->
          record w "send %d->%d %s" ctx.self dst (w.msg_to_string msg);
          enqueue ()
    end
  end
  else record w "send-dropped (sender %d down) ->%d %s" ctx.self dst (w.msg_to_string msg)

let broadcast ctx ~dsts msg = List.iter (fun dst -> send ctx ~dst msg) dsts

(** [inject w ~dst ~at msg] delivers [msg] to [dst] at absolute time [at],
    from outside the system (the environment/client, site 0).  Used for the
    initial transaction requests, whose distribution mechanism the paper
    deliberately leaves unmodelled. *)
let inject w ~dst ~at msg =
  check_site w dst;
  Eventq.push w.queue ~time:at (Deliver { src = 0; dst; dst_gen = w.generation.(dst); msg })

(** [set_timer ctx ~delay f] schedules [f] to run at [now + delay] unless
    the site crashes first or the timer is cancelled. *)
let set_timer ctx ~delay f =
  let w = ctx.world in
  let id = w.next_timer_id in
  w.next_timer_id <- id + 1;
  Eventq.push w.queue ~time:(w.now +. delay)
    (Timer { site = ctx.self; gen = w.generation.(ctx.self); id; callback = f });
  id

let cancel_timer ctx id = Hashtbl.replace ctx.world.cancelled_timers id ()

let schedule_crash w ~at s =
  check_site w s;
  Eventq.push w.queue ~time:at (Crash s)

let schedule_recovery w ~at s =
  check_site w s;
  Eventq.push w.queue ~time:at (Recover s)

let do_crash w s =
  if w.alive.(s) then begin
    w.alive.(s) <- false;
    w.generation.(s) <- w.generation.(s) + 1;
    Metrics.incr w.metrics "crashes";
    record w "CRASH site %d" s;
    List.iter (fun f -> f s) w.crash_hooks;
    (* The network reliably reports the failure to every operational site
       after the detection delay. *)
    List.iter
      (fun observer ->
        if observer <> s then
          Eventq.push w.queue ~time:(w.now +. w.detection_delay)
            (Detect_down { observer; failed = s }))
      (sites w)
  end

(** [crash_self ctx] crashes the calling site immediately: its pending
    timers die, and any [send] it performs later in the same handler is
    dropped. *)
let crash_self ctx = do_crash ctx.world ctx.self

let do_recover w s =
  if not w.alive.(s) then begin
    w.alive.(s) <- true;
    Metrics.incr w.metrics "recoveries";
    record w "RECOVER site %d" s;
    (handlers_for w s).on_restart { world = w; self = s };
    List.iter
      (fun observer ->
        if observer <> s then
          Eventq.push w.queue ~time:(w.now +. w.detection_delay)
            (Detect_up { observer; recovered = s }))
      (sites w)
  end

let stop w = w.stopped <- true

(* The site an event executes at, for stall deferral.  Crashes and
   recoveries are acts of the environment, not of the site's processor,
   so a stalled site still crashes (and recovers) on time. *)
let event_target = function
  | Deliver { dst; _ } -> Some dst
  | Timer { site; _ } -> Some site
  | Detect_down { observer; _ } | Detect_up { observer; _ } | False_down { observer; _ } ->
      Some observer
  | Crash _ | Recover _ -> None

let dispatch_now w = function
  | Deliver { src; dst; dst_gen; msg } ->
      (* the partition check happened at send time: a message on the wire
         is past the network's drop decision *)
      Metrics.incr w.metrics "events_deliver";
      if w.alive.(dst) && w.generation.(dst) = dst_gen then begin
        Metrics.incr w.metrics "messages_delivered";
        record w "deliver %d->%d %s" src dst (w.msg_to_string msg);
        (handlers_for w dst).on_message { world = w; self = dst } ~src msg
      end
      else begin
        Metrics.incr w.metrics "messages_dropped";
        record w "drop %d->%d %s" src dst (w.msg_to_string msg)
      end
  | Timer { site; gen; id; callback } ->
      Metrics.incr w.metrics "events_timer";
      let cancelled = Hashtbl.mem w.cancelled_timers id in
      if cancelled then begin
        Hashtbl.remove w.cancelled_timers id;
        Metrics.incr w.metrics "timers_cancelled"
      end;
      if (not cancelled) && w.alive.(site) && w.generation.(site) = gen then callback ()
  | Crash s ->
      Metrics.incr w.metrics "events_crash";
      do_crash w s
  | Recover s ->
      Metrics.incr w.metrics "events_recover";
      do_recover w s
  | Detect_down { observer; failed } ->
      Metrics.incr w.metrics "events_detect_down";
      if w.alive.(observer) && not w.alive.(failed) then begin
        record w "site %d detects failure of site %d" observer failed;
        (handlers_for w observer).on_peer_down { world = w; self = observer } failed
      end
  | False_down { observer; suspect } ->
      Metrics.incr w.metrics "events_false_down";
      (* only while the partition still separates them: a short-lived
         partition that healed before detection stays invisible *)
      if w.alive.(observer) && separated w observer suspect then begin
        Metrics.incr w.metrics "false_suspicions";
        record w "site %d FALSELY suspects site %d (partition)" observer suspect;
        (handlers_for w observer).on_peer_down { world = w; self = observer } suspect
      end
  | Detect_up { observer; recovered } ->
      Metrics.incr w.metrics "events_detect_up";
      if w.alive.(observer) && w.alive.(recovered) then begin
        record w "site %d detects recovery of site %d" observer recovered;
        (handlers_for w observer).on_peer_up { world = w; self = observer } recovered
      end

(* A stalled site's processor does nothing while the window is open:
   events targeting it are parked and re-enqueued at the window's end,
   where they dispatch in one burst — the wake-up after a GC pause. *)
let dispatch w ev =
  let deferred =
    match event_target ev with
    | Some s -> (
        match stalled_until w s with
        | Some until_t when until_t > w.now ->
            Metrics.incr w.metrics "events_stalled";
            record w "stall defers an event at site %d to %.2f" s until_t;
            Eventq.push w.queue ~time:until_t ev;
            true
        | _ -> false)
    | None -> false
  in
  if not deferred then dispatch_now w ev

(** [run w ~handlers ?until ()] registers handlers, starts every site, and
    processes events in timestamp order until quiescence, [until] (default
    100_000.0 time units), or {!stop}.  Returns the final simulation
    time. *)
let run w ~handlers ?(until = 100_000.0) () =
  w.handlers <- Some handlers;
  List.iter (fun s -> if w.alive.(s) then (handlers s).on_start { world = w; self = s }) (sites w);
  let queue_depth_hwm = Metrics.gauge_handle w.metrics "queue_depth_hwm" in
  let rec loop () =
    if w.stopped then ()
    else begin
      Metrics.gauge_record queue_depth_hwm (Eventq.length w.queue);
      match Eventq.pop w.queue with
      | None -> ()
      | Some (time, ev) ->
          if time > until then ()
          else begin
            w.now <- max w.now time;
            dispatch w ev;
            loop ()
          end
    end
  in
  loop ();
  w.now

let pp_trace ppf w =
  List.iter (fun e -> Fmt.pf ppf "%8.2f  %s@," e.at e.what) (trace_entries w)
