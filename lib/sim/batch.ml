(** Ticket-based group-commit batcher over an abstract sync barrier.

    A WAL [force] is an append plus a sync; under load, syncing once per
    record serializes every committer behind the disk.  The classic fix
    (Gray's group commit) is to let concurrent forces on one device share
    a single barrier: callers enqueue their record's completion callback
    (the "ticket"), one sync covers everything queued, and all covered
    callbacks fire after the barrier completes.

    The batcher is generic over the barrier — it is handed a [sync]
    thunk, not a disk — so both WAL flavours ({!Engine.Wal} and
    {!Kv.Kv_wal}) wire it over their own {!Sim.Disk.sync}.  Two
    orthogonal knobs:

    - [group]: coalesce up to [max_batch] records per sync, waiting at
      most [max_wait] simulated seconds for stragglers when the device
      is idle.  When the device is busy, arrivals accumulate and the
      next batch forms the moment the in-flight sync completes — the
      saturated-disk regime where amortization actually pays.
    - [sync_latency]: simulated seconds per sync.  The real
      {!Sim.Disk.sync} is instantaneous in simulated time; charging a
      latency here is what gives group commit something to amortize and
      what makes the serial one-sync-per-force baseline measurably slow.

    Completion callbacks are scheduled through an injected [schedule]
    thunk (a site-bound {!Sim.World.set_timer} in practice), so pending
    flushes die with the site: a crash inside a batch loses every
    covered record's callback, exactly as a real crash loses an
    un-fsynced tail.  {!crash} additionally drops the queue and bumps a
    generation counter so stale completions can never resurrect.

    Callbacks run strictly in submission order (FIFO across batches), so
    continuation-passing callers keep their force ordering. *)

type group = { max_batch : int; max_wait : float }

type entry = Record of (unit -> unit) | Barrier of (unit -> unit)

type t = {
  sync : unit -> unit;
  group : group option;
  sync_latency : float;
  mutable schedule : (float -> (unit -> unit) -> unit) option;
  mutable on_flush : (batch:int -> unit) option;
  mutable on_drain : (unit -> unit) option;
  queue : entry Queue.t;
  mutable busy : bool;  (** a sync is in flight *)
  mutable due : bool;  (** the [max_wait] timer expired with records still queued *)
  mutable in_flight : int;  (** records submitted whose callback has not yet run *)
  mutable gen : int;  (** bumped on crash: stale completions and timers no-op *)
  mutable arm_id : int;  (** invalidates pending [max_wait] timers after a flush *)
}

let create ?group ?(sync_latency = 0.0) ~sync () =
  (match group with
  | Some { max_batch; max_wait } ->
      if max_batch < 1 then invalid_arg "Batch.create: max_batch must be >= 1";
      if max_wait < 0.0 then invalid_arg "Batch.create: max_wait must be >= 0"
  | None -> ());
  if sync_latency < 0.0 then invalid_arg "Batch.create: sync_latency must be >= 0";
  {
    sync;
    group;
    sync_latency;
    schedule = None;
    on_flush = None;
    on_drain = None;
    queue = Queue.create ();
    busy = false;
    due = false;
    in_flight = 0;
    gen = 0;
    arm_id = 0;
  }

let attach t ~schedule ?on_flush ?on_drain () =
  t.schedule <- Some schedule;
  (match on_flush with Some _ -> t.on_flush <- on_flush | None -> ());
  match on_drain with Some _ -> t.on_drain <- on_drain | None -> ()

let pending t = t.in_flight

let queued_records t =
  Queue.fold (fun acc e -> match e with Record _ -> acc + 1 | Barrier _ -> acc) 0 t.queue

(* Dequeue entries until [n] records have been taken; barriers ride along
   with the batch they are queued behind. *)
let take_batch t n =
  let taken = ref [] and records = ref 0 in
  while (not (Queue.is_empty t.queue)) && !records < n do
    let e = Queue.pop t.queue in
    (match e with Record _ -> incr records | Barrier _ -> ());
    taken := e :: !taken
  done;
  (* trailing barriers directly behind the last record belong to this sync *)
  let rec drain_barriers () =
    match Queue.peek_opt t.queue with
    | Some (Barrier _ as e) ->
        ignore (Queue.pop t.queue);
        taken := e :: !taken;
        drain_barriers ()
    | _ -> ()
  in
  drain_barriers ();
  (List.rev !taken, !records)

let rec pump t =
  if (not t.busy) && not (Queue.is_empty t.queue) then begin
    (* a barrier at the head has nothing queued in front of it: run now *)
    match Queue.peek t.queue with
    | Barrier k ->
        ignore (Queue.pop t.queue);
        k ();
        pump t
    | Record _ -> (
        match t.group with
        | None -> start_flush t 1
        | Some { max_batch; max_wait } ->
            let n = queued_records t in
            if n >= max_batch || t.due then start_flush t max_batch
            else arm_timer t max_wait)
  end

and arm_timer t max_wait =
  match t.schedule with
  | None -> start_flush t max_int (* unattached: degrade to flush-through *)
  | Some schedule ->
      t.arm_id <- t.arm_id + 1;
      let arm = t.arm_id and gen = t.gen in
      schedule max_wait (fun () ->
          if t.gen = gen && t.arm_id = arm && not (Queue.is_empty t.queue) then begin
            t.due <- true;
            pump t
          end)

and start_flush t n =
  let batch, records = take_batch t n in
  t.due <- false;
  t.arm_id <- t.arm_id + 1;
  t.busy <- true;
  let gen = t.gen in
  let complete () =
    if t.gen = gen then begin
      if records > 0 then begin
        t.sync ();
        match t.on_flush with Some f -> f ~batch:records | None -> ()
      end;
      t.busy <- false;
      List.iter
        (fun e ->
          match e with
          | Record k ->
              t.in_flight <- t.in_flight - 1;
              k ()
          | Barrier k -> k ())
        batch;
      (match t.on_drain with Some f -> f () | None -> ());
      pump t
    end
  in
  match t.schedule with
  | Some schedule when t.sync_latency > 0.0 -> schedule t.sync_latency complete
  | _ -> complete ()

let submit t k =
  match t.schedule with
  | None when t.sync_latency > 0.0 || t.group <> None ->
      (* not yet attached to a scheduler (e.g. startup records): stay
         synchronous so nothing is ever silently deferred forever *)
      t.sync ();
      k ()
  | _ ->
      t.in_flight <- t.in_flight + 1;
      Queue.push (Record k) t.queue;
      pump t

let barrier t k =
  if t.in_flight = 0 && Queue.is_empty t.queue then k ()
  else begin
    Queue.push (Barrier k) t.queue;
    pump t
  end

(** Synchronous flush-through for callers that need the old blocking
    [force]: everything queued becomes durable now and its callbacks run
    now, in order.  An in-flight batch keeps its own (already captured)
    callbacks and completes on its own schedule. *)
let flush_now t =
  let drained = ref [] in
  Queue.iter (fun e -> drained := e :: !drained) t.queue;
  Queue.clear t.queue;
  t.due <- false;
  t.arm_id <- t.arm_id + 1;
  t.sync ();
  List.iter
    (fun e ->
      match e with
      | Record k ->
          t.in_flight <- t.in_flight - 1;
          k ()
      | Barrier k -> k ())
    (List.rev !drained)

(** Crash semantics: every queued record and callback is lost (the
    covered transactions never learn their force completed), in-flight
    completions are fenced off by the generation bump. *)
let crash t =
  t.gen <- t.gen + 1;
  t.arm_id <- t.arm_id + 1;
  Queue.clear t.queue;
  t.busy <- false;
  t.due <- false;
  t.in_flight <- 0
