(** [skeen] — command-line front end to the commit-protocol laboratory.

    Subcommands:
    - [analyze]     run the fundamental nonblocking theorem on a protocol
    - [graph]       build the reachable state graph (stats or DOT)
    - [concurrency] print the concurrency-set table
    - [rulebook]    print the backup coordinator's decision table
    - [fsa]         print or DOT-render the per-site FSAs
    - [synthesize]  apply the buffer-state transformation to a 2PC protocol
    - [simulate]    execute a transaction with optional crash injection
    - [chaos]       randomized fault schedules + oracles + shrinking
    - [explore]     coverage-guided fault-space search over a plan corpus
    - [bank]        run the bank workload on the KV store *)

open Cmdliner

let protocol_conv =
  let labels = List.map (fun e -> e.Core.Catalog.label) Core.Catalog.all in
  (* "paxos" is accepted as a synonym of the catalog label "paxos-commit" *)
  Arg.enum (("paxos", "paxos-commit") :: List.map (fun l -> (l, l)) labels)

let protocol_arg =
  Arg.(
    required
    & pos 0 (some protocol_conv) None
    & info [] ~docv:"PROTOCOL"
        ~doc:
          "Protocol: 1pc, central-2pc, decentralized-2pc, central-3pc, decentralized-3pc, \
           paxos-commit.")

let sites_arg =
  Arg.(value & opt int 3 & info [ "n"; "sites" ] ~docv:"N" ~doc:"Number of participating sites.")

let build label n = (Core.Catalog.find label).Core.Catalog.build n

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run label n =
    let p = build label n in
    let graph = Core.Reachability.build p in
    let report = Core.Nonblocking.analyze graph in
    Fmt.pr "%a@." Core.Nonblocking.pp_report report;
    let sync = Core.Synchrony.check p in
    Fmt.pr "synchronous within one state transition: %b@." sync.Core.Synchrony.synchronous;
    let cm = Core.Committable.compute graph in
    Fmt.pr "committable states: %a@."
      Fmt.(list ~sep:comma string)
      (Core.Committable.committable_ids cm);
    if report.Core.Nonblocking.nonblocking then `Ok () else `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the fundamental nonblocking theorem on a protocol.")
    Term.(ret (const run $ protocol_arg $ sites_arg))

(* ---------------- graph ---------------- *)

let graph_cmd =
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of statistics.") in
  let run label n dot =
    let g = Core.Reachability.build (build label n) in
    if dot then print_string (Core.Render.reachability_to_dot g)
    else Fmt.pr "%a@." Core.Reachability.pp_stats (Core.Reachability.stats g)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Build the reachable state graph of a protocol.")
    Term.(const run $ protocol_arg $ sites_arg $ dot_arg)

(* ---------------- concurrency ---------------- *)

let concurrency_cmd =
  let run label n =
    let g = Core.Reachability.build (build label n) in
    print_string (Core.Render.concurrency_table g)
  in
  Cmd.v
    (Cmd.info "concurrency" ~doc:"Print the concurrency-set table of a protocol.")
    Term.(const run $ protocol_arg $ sites_arg)

(* ---------------- rulebook ---------------- *)

let rulebook_cmd =
  let run label n = Fmt.pr "%a@." Engine.Rulebook.pp (Engine.Rulebook.compile (build label n)) in
  Cmd.v
    (Cmd.info "rulebook" ~doc:"Print the backup coordinator's decision table.")
    Term.(const run $ protocol_arg $ sites_arg)

(* ---------------- fsa ---------------- *)

let fsa_cmd =
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  let site_arg = Arg.(value & opt int 1 & info [ "site" ] ~docv:"S" ~doc:"Site whose FSA to print.") in
  let run label n dot site =
    let a = Core.Protocol.automaton (build label n) site in
    if dot then print_string (Core.Render.automaton_to_dot a) else Fmt.pr "%a@." Core.Automaton.pp a
  in
  Cmd.v
    (Cmd.info "fsa" ~doc:"Print a site's finite state automaton.")
    Term.(const run $ protocol_arg $ sites_arg $ dot_arg $ site_arg)

(* ---------------- synthesize ---------------- *)

let synthesize_cmd =
  let run n =
    let graph = Core.Reachability.build (Core.Catalog.central_2pc n) in
    let { Core.Synthesis.protocol; buffers_added } = Core.Synthesis.buffer_protocol graph in
    Fmt.pr "added buffer states: %a@.@."
      Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
      buffers_added;
    Fmt.pr "%a@." Core.Nonblocking.pp_report (Core.Nonblocking.analyze_protocol protocol)
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Apply the buffer-state transformation to central-site 2PC and verify the result.")
    Term.(const run $ sites_arg)

(* ---------------- simulate ---------------- *)

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics (counters, gauges and latency histograms with p50/p90/p99) \
           as JSON to $(docv).")

let write_metrics_json file json =
  match open_out file with
  | exception Sys_error msg ->
      Fmt.epr "skeen: cannot write metrics: %s@." msg;
      exit 1
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Sim.Json.to_string json);
          output_char oc '\n');
      Fmt.pr "wrote metrics to %s@." file

let simulate_cmd =
  let crash_site = Arg.(value & opt (some int) None & info [ "crash-site" ] ~docv:"S" ~doc:"Crash this site.") in
  let crash_step =
    Arg.(value & opt int 1 & info [ "crash-step" ] ~docv:"K" ~doc:"Crash at the site's K-th transition (0-based).")
  in
  let crash_sent =
    Arg.(
      value
      & opt (some int) None
      & info [ "sent" ] ~docv:"J"
          ~doc:"Crash after logging and sending J messages of the transition (default: before the transition).")
  in
  let recover_at =
    Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"T" ~doc:"Recover the crashed site at time T.")
  in
  let no_votes =
    Arg.(value & opt_all int [] & info [ "no-vote" ] ~docv:"S" ~doc:"Site S votes no (repeatable).")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.") in
  let quorum =
    Arg.(
      value & flag
      & info [ "quorum" ]
          ~doc:"Use quorum-based termination (majority) instead of the paper's decision rule.")
  in
  let isolate =
    Arg.(
      value
      & opt (some int) None
      & info [ "isolate" ] ~docv:"S"
          ~doc:
            "Partition site S away from the others from t=1.5 to t=200 with false failure \
             reports — violates the paper's detector assumption.")
  in
  let run label n crash_site crash_step crash_sent recover_at no_votes trace seed quorum isolate
      metrics_json =
    let rb = Engine.Rulebook.compile (build label n) in
    let plan =
      match crash_site with
      | None -> Engine.Failure_plan.none
      | Some site ->
          let mode =
            match crash_sent with
            | None -> Engine.Failure_plan.Before_transition
            | Some j -> Engine.Failure_plan.After_logging j
          in
          Engine.Failure_plan.make
            ~step_crashes:[ { Engine.Failure_plan.site; step = crash_step; mode } ]
            ~recoveries:(match recover_at with Some t -> [ (site, t) ] | None -> [])
            ()
    in
    let votes = List.map (fun s -> (s, Core.Types.No)) no_votes in
    let termination =
      if quorum then Engine.Runtime.Quorum (Engine.Runtime.majority n) else Engine.Runtime.Skeen
    in
    let partition =
      Option.map
        (fun s -> (1.5, 200.0, [ List.filter (fun x -> x <> s) (List.init n (fun i -> i + 1)); [ s ] ]))
        isolate
    in
    let r =
      Engine.Runtime.run
        (Engine.Runtime.config ~votes ~plan ~seed ~tracing:trace ~termination ?partition rb)
    in
    Fmt.pr "%a@." Engine.Runtime.pp_result r;
    if trace then
      List.iter (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what) r.Engine.Runtime.trace;
    Option.iter (fun f -> write_metrics_json f r.Engine.Runtime.metrics_json) metrics_json
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Execute one distributed transaction on the simulator.")
    Term.(
      const run $ protocol_arg $ sites_arg $ crash_site $ crash_step $ crash_sent $ recover_at
      $ no_votes $ trace $ seed $ quorum $ isolate $ metrics_json_arg)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let protocol_opt =
    Arg.(
      required
      & opt (some protocol_conv) None
      & info [ "protocol" ] ~docv:"PROTOCOL"
          ~doc:
            "Protocol: 1pc, central-2pc, decentralized-2pc, central-3pc, decentralized-3pc, \
             paxos-commit (or its synonym paxos).")
  in
  let f_arg =
    Arg.(
      value & opt int 1
      & info [ "f" ] ~docv:"F"
          ~doc:
            "Paxos Commit only: tolerated acceptor failures.  The decision is replicated on \
             2F+1 acceptors; F=0 degenerates to a single-copy coordinator log (2PC-equivalent \
             blocking behaviour).")
  in
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Maximum concurrent failures to inject.")
  in
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"M" ~doc:"Number of seeds (schedules) to run.")
  in
  let seed_base_arg =
    Arg.(value & opt int 0 & info [ "seed-base" ] ~docv:"S" ~doc:"First seed of the sweep.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Shard the seed sweep across W domains (default 1).  Every seed runs in an isolated \
             simulation instance and per-seed metrics merge in seed order, so the summary and \
             counterexamples are byte-identical whatever W is; only wall-clock changes.")
  in
  let until_arg =
    Arg.(
      value & opt float 1500.0
      & info [ "until" ] ~docv:"T"
          ~doc:"Stall budget: simulation horizon after which an undecided site is a liveness violation.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Replay one seed with tracing: print its generated plan, verdicts and full event trace.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Run one explicit failure plan (the $(b,Failure_plan.to_string) syntax a shrunk \
             counterexample is printed in, e.g. 'crash site=1 at=2; msg nth=4 fault=dup') \
             instead of generating schedules.")
  in
  let partitions_arg =
    Arg.(
      value & flag
      & info [ "partitions" ]
          ~doc:
            "Ablation profile: include partition windows in the schedules.  Under partitions the \
             Skeen rule is expected to split-brain (see experiment E13).")
  in
  let drops_arg =
    Arg.(
      value & opt int 0
      & info [ "drops" ] ~docv:"W"
          ~doc:
            "Ablation profile: relative weight of message-drop faults (default 0 — drops violate \
             the paper's reliable-network assumption).")
  in
  let quorum_arg =
    Arg.(value & flag & info [ "quorum" ] ~doc:"Terminate with the majority-quorum rule.")
  in
  let disk_faults_arg =
    Arg.(
      value & flag
      & info [ "disk-faults" ]
          ~doc:
            "Storage-fault profile: crash incidents may carry a torn or corrupted log tail on the \
             crashing site's disk.  Recovery repairs the log (truncating at the first invalid \
             record) and the durability oracle checks every externally visible action against \
             the repaired log.")
  in
  let lost_flush_arg =
    Arg.(
      value & opt int 0
      & info [ "lost-flush" ] ~docv:"W"
          ~doc:
            "Ablation profile: relative weight of lying-sync faults (default 0 — a sync that \
             reports success without persisting violates the paper's stable-storage axiom, so \
             expect durability violations).  Implies the storage-fault profile.")
  in
  let kv_arg =
    Arg.(
      value & flag
      & info [ "kv" ]
          ~doc:
            "Drive the database harness instead of a bare protocol instance: the same schedules \
             against a bank-transfer workload, judged by the atomicity, conservation and \
             nonblocking-progress oracles (central-2pc and central-3pc only).")
  in
  let detector_arg =
    Arg.(
      value & flag
      & info [ "detector" ]
          ~doc:
            "Replace the failure oracle with timeout-based heartbeat suspicion: sites detect \
             failures from missing heartbeats, may suspect falsely, and fence termination \
             directives by election epoch.")
  in
  let no_fencing_arg =
    Arg.(
      value & flag
      & info [ "no-fencing" ]
          ~doc:
            "Ablation: accept termination directives regardless of epoch.  A deposed-but-alive \
             backup's stale orders are then obeyed — expect atomicity violations (experiment \
             E19).  Implies --detector.")
  in
  let detector_faults_arg =
    Arg.(
      value & flag
      & info [ "detector-faults" ]
          ~doc:
            "Fault profile: add latency spikes, heartbeat-loss bursts and stall (GC-pause) \
             windows to the schedules — faults that provoke false suspicion without killing \
             any site.  Implies --detector.")
  in
  let heartbeat_arg =
    Arg.(
      value & opt float 1.0
      & info [ "heartbeat-period" ] ~docv:"T" ~doc:"Detector heartbeat period (seconds).")
  in
  let suspicion_arg =
    Arg.(
      value & opt float 5.0
      & info [ "suspicion-timeout" ] ~docv:"T"
          ~doc:"Silence after which a peer is suspected (must exceed the heartbeat period).")
  in
  let election_arg =
    Arg.(
      value & opt float 4.0
      & info [ "election-timeout" ] ~docv:"T"
          ~doc:"Objection window a campaigning backup waits before assuming leadership.")
  in
  let presumption_arg =
    Arg.(
      value
      & opt (some (enum [ ("abort", `Abort); ("commit", `Commit) ])) None
      & info [ "presumption" ] ~docv:"abort|commit"
          ~doc:
            "Commit presumption: the covered outcome's decision record is appended but not \
             forced, trading one disk force per transaction for a bounded durability gap \
             the oracles license.")
  in
  let read_only_opt_arg =
    Arg.(
      value & flag
      & info [ "read-only-opt" ]
          ~doc:
            "Read-only participant optimization: read-only participants vote and drop out \
             of the protocol without forcing their log.  On the engine path the \
             highest-numbered participant is marked read-only.")
  in
  let group_commit_arg =
    Arg.(
      value & opt int 0
      & info [ "group-commit" ] ~docv:"N"
          ~doc:
            "Group commit: coalesce up to N concurrent log forces into one shared disk \
             sync (straggler timer 0.05 s).  0 disables batching.  Only observable with a \
             nonzero $(b,--sync-latency).")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"D"
          ~doc:
            "Coordinator pipelining depth ($(b,--kv) only): admit a new transaction while \
             fewer than D log forces are in flight.  1 serializes admission on disk I/O \
             (the default).")
  in
  let sync_latency_arg =
    Arg.(
      value & opt float 0.0
      & info [ "sync-latency" ] ~docv:"T"
          ~doc:"Simulated disk sync latency in seconds (0 = synchronous forces).")
  in
  let detector_profile base =
    {
      base with
      Sim.Nemesis.p_delay_spike = 0.4;
      spike_extra_min = 1.0;
      spike_extra_max = 3.5;
      p_stall = 0.45;
      p_hb_loss = 0.5;
      detector_window_min = 4.0;
      detector_window_max = 14.0;
    }
  in
  let storage_profile base ~disk_faults ~lost_flush =
    if disk_faults || lost_flush > 0 then
      { base with Sim.Nemesis.p_disk_fault = 0.6; lost_flush_weight = lost_flush }
    else base
  in
  (* --plan goes through the family check before anything runs: a clause the
     selected protocol cannot execute (e.g. move-crash outside 3PC,
     acceptor-crash outside Paxos Commit) would otherwise be silently
     ignored and the run would vacuously pass. *)
  let parse_plan ~label s =
    match Engine.Failure_plan.of_string s with
    | Error msg ->
        Fmt.epr "skeen chaos: bad --plan: %s@." msg;
        exit 2
    | Ok plan -> (
        match Engine.Failure_plan.unsupported_clauses ~protocol:label plan with
        | [] -> plan
        | msgs ->
            List.iter (fun m -> Fmt.epr "skeen chaos: %s@." m) msgs;
            exit 2)
  in
  let run_kv label n f k seeds seed_base workers until replay partitions drops quorum ~disk_faults
      ~lost_flush ~detector ~fencing ~detector_faults ~presumption ~read_only_opt ~group_commit
      ~pipeline_depth ~sync_latency =
    let presumption =
      Option.map
        (function `Abort -> Kv.Node.Presume_abort | `Commit -> Kv.Node.Presume_commit)
        presumption
    in
    let group_commit =
      if group_commit > 0 then Some { Kv.Kv_wal.max_batch = group_commit; max_wait = 0.05 }
      else None
    in
    let protocol =
      match label with
      | "central-2pc" -> Kv.Node.Two_phase
      | "central-3pc" -> Kv.Node.Three_phase
      | "paxos-commit" -> Kv.Node.Paxos f
      | other ->
          Fmt.epr
            "skeen chaos --kv: unsupported protocol %s (use central-2pc, central-3pc or \
             paxos-commit)@."
            other;
          exit 2
    in
    let termination =
      if quorum then Kv.Node.T_quorum (Engine.Runtime.majority n) else Kv.Node.T_skeen
    in
    let profile =
      storage_profile ~disk_faults ~lost_flush
        {
          Kv.Chaos_db.default_profile with
          Sim.Nemesis.p_partition = (if partitions then 0.35 else 0.0);
          drop_weight = drops;
        }
    in
    let profile = if detector_faults then detector_profile profile else profile in
    let profile =
      match protocol with
      | Kv.Node.Paxos f ->
          (* aim faults at the replicated-coordinator state: the KV harness
             puts the 2f+1 acceptors on the lowest-numbered sites *)
          {
            profile with
            Sim.Nemesis.p_acceptor_crash = 0.5;
            acceptor_sites = List.init ((2 * f) + 1) (fun i -> i + 1);
            max_acceptor_crashes = f;
            p_lease_fault = 0.3;
          }
      | _ -> profile
    in
    match replay with
    | Some seed ->
        let o =
          Kv.Chaos_db.run_one ~profile ~protocol ~termination ~n_sites:n ~until ~tracing:true
            ~detector ~fencing ?presumption ~read_only_opt ?group_commit ~sync_latency
            ~pipeline_depth ~k ~seed ()
        in
        Fmt.pr "seed %d schedule:@.%s@." seed
          (match Sim.Nemesis.to_string o.Kv.Chaos_db.schedule with "" -> "(no faults)" | s -> s);
        Fmt.pr "%a@." Kv.Db.pp_result o.Kv.Chaos_db.result;
        List.iter (fun v -> Fmt.pr "VIOLATION %a@." Kv.Chaos_db.pp_violation v) o.Kv.Chaos_db.violations;
        List.iter
          (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what)
          o.Kv.Chaos_db.result.Kv.Db.trace;
        if o.Kv.Chaos_db.violations <> [] then exit 1
    | None ->
        let summary, wall =
          Sim.Clock.time (fun () ->
              Kv.Chaos_db.sweep ~profile ~protocol ~termination ~n_sites:n ~until ~detector
                ~fencing ?presumption ~read_only_opt ?group_commit ~sync_latency ~pipeline_depth
                ~seed_base ~workers ~k ~seeds ())
        in
        Fmt.pr "%a@." Kv.Chaos_db.pp_summary summary;
        Fmt.pr "%.0f schedules/sec (%.2f s wall)@."
          (if wall > 0.0 then float_of_int seeds /. wall else 0.0)
          wall;
        List.iter
          (fun (seed, vs, shrunk) ->
            Fmt.pr "@.seed %d:@." seed;
            List.iter (fun v -> Fmt.pr "  %a@." Kv.Chaos_db.pp_violation v) vs;
            Fmt.pr "  shrunk schedule: %s@."
              (match Sim.Nemesis.to_string shrunk with "" -> "(no faults)" | s -> s))
          summary.Kv.Chaos_db.failing;
        if summary.Kv.Chaos_db.violations_by_oracle <> [] then exit 1
  in
  let run label n f k seeds seed_base workers until replay plan_str partitions drops quorum
      disk_faults lost_flush kv detector_flag no_fencing detector_faults heartbeat_period
      suspicion_timeout election_timeout presumption read_only_opt group_commit pipeline_depth
      sync_latency metrics_json =
    let detector = detector_flag || no_fencing || detector_faults in
    let fencing = not no_fencing in
    if kv then run_kv label n f k seeds seed_base workers until replay partitions drops quorum
        ~disk_faults ~lost_flush ~detector ~fencing ~detector_faults ~presumption ~read_only_opt
        ~group_commit ~pipeline_depth ~sync_latency
    else if label = "paxos-commit" then begin
      let module EP = Engine.Paxos in
      let profile =
        storage_profile ~disk_faults ~lost_flush
          {
            (EP.sweep_profile ~n_sites:n ~f) with
            Sim.Nemesis.p_partition = (if partitions then 0.35 else 0.0);
            drop_weight = drops;
          }
      in
      let profile = if detector_faults then detector_profile profile else profile in
      match (plan_str, replay) with
      | Some s, _ ->
          let plan = parse_plan ~label s in
          let cfg = EP.config ~plan ~seed:seed_base ~tracing:true ~until ~n_sites:n ~f () in
          let result = EP.run cfg in
          let violations = EP.violations ~cfg result in
          Fmt.pr "plan: %s@." (Engine.Failure_plan.to_string plan);
          Fmt.pr "%a@." Engine.Runtime.pp_result result;
          List.iter (fun v -> Fmt.pr "VIOLATION %a@." Engine.Chaos.pp_violation v) violations;
          List.iter
            (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what)
            result.Engine.Runtime.trace;
          if violations <> [] then exit 1
      | None, Some seed ->
          let o = EP.run_one ~profile ~until ~n_sites:n ~f ~k ~seed () in
          let cfg =
            EP.config ~plan:o.EP.ro_plan ~seed ~tracing:true ~until ~n_sites:n ~f ()
          in
          let result = EP.run cfg in
          Fmt.pr "seed %d generates: %s@." seed
            (match Engine.Failure_plan.to_string o.EP.ro_plan with
            | "" -> "(no faults)"
            | s -> s);
          Fmt.pr "%a@." Engine.Runtime.pp_result result;
          List.iter
            (fun v -> Fmt.pr "VIOLATION %a@." Engine.Chaos.pp_violation v)
            o.EP.ro_violations;
          List.iter
            (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what)
            result.Engine.Runtime.trace
      | None, None ->
          let summary, wall =
            Sim.Clock.time (fun () ->
                EP.sweep ~profile ~until ~seed_base ~n_sites:n ~f ~k ~seeds ())
          in
          Fmt.pr "paxos-commit n=%d f=%d (%d acceptors) k=%d: %d seeds run, %d failing@." n f
            (List.length (EP.acceptors ~n_sites:n ~f))
            k summary.EP.ps_seeds_run
            (List.length summary.EP.ps_failing);
          Fmt.pr "%.0f schedules/sec (%.2f s wall)@."
            (if wall > 0.0 then float_of_int seeds /. wall else 0.0)
            wall;
          List.iter
            (fun (seed, vs, plan) ->
              Fmt.pr "@.seed %d:@." seed;
              List.iter (fun v -> Fmt.pr "  %a@." Engine.Chaos.pp_violation v) vs;
              Fmt.pr "  plan: %s@."
                (match Engine.Failure_plan.to_string plan with "" -> "(no faults)" | s -> s))
            summary.EP.ps_failing;
          Option.iter
            (fun file -> write_metrics_json file (Sim.Metrics.to_json summary.EP.ps_metrics))
            metrics_json;
          if summary.EP.ps_failing <> [] then exit 1
    end
    else begin
    if pipeline_depth <> 1 then
      Fmt.epr "skeen chaos: --pipeline applies only to --kv (the bare protocol engine runs one \
               transaction); ignoring it@.";
    let presumption =
      Option.map
        (function `Abort -> Engine.Runtime.Presume_abort | `Commit -> Engine.Runtime.Presume_commit)
        presumption
    in
    let group_commit =
      if group_commit > 0 then Some { Engine.Wal.max_batch = group_commit; max_wait = 0.05 }
      else None
    in
    let read_only = if read_only_opt then Some [ n ] else None in
    let rb = Engine.Rulebook.compile (build label n) in
    let termination =
      if quorum then Engine.Runtime.Quorum (Engine.Runtime.majority n) else Engine.Runtime.Skeen
    in
    let profile =
      storage_profile ~disk_faults ~lost_flush
        {
          Sim.Nemesis.default_profile with
          Sim.Nemesis.p_partition = (if partitions then 0.35 else 0.0);
          drop_weight = drops;
        }
    in
    let profile = if detector_faults then detector_profile profile else profile in
    match (plan_str, replay) with
    | Some s, _ ->
        let plan = parse_plan ~label s in
        let result, violations =
          Engine.Chaos.run_plan ~until ~termination ~tracing:true ~detector ~heartbeat_period
            ~suspicion_timeout ~election_timeout ~fencing ?presumption ?read_only ?group_commit
            ~sync_latency rb ~plan ~seed:seed_base ()
        in
        Fmt.pr "plan: %s@." (Engine.Failure_plan.to_string plan);
        Fmt.pr "%a@." Engine.Runtime.pp_result result;
        List.iter (fun v -> Fmt.pr "VIOLATION %a@." Engine.Chaos.pp_violation v) violations;
        List.iter
          (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what)
          result.Engine.Runtime.trace;
        if violations <> [] then exit 1
    | None, Some seed ->
        let { Engine.Chaos.plan; violations; _ } =
          Engine.Chaos.run_one ~profile ~until ~termination ~detector ~heartbeat_period
            ~suspicion_timeout ~election_timeout ~fencing ?presumption ?read_only ?group_commit
            ~sync_latency rb ~k ~seed ()
        in
        let result, _ =
          Engine.Chaos.run_plan ~until ~termination ~tracing:true ~detector ~heartbeat_period
            ~suspicion_timeout ~election_timeout ~fencing ?presumption ?read_only ?group_commit
            ~sync_latency rb ~plan ~seed ()
        in
        Fmt.pr "seed %d generates: %s@." seed
          (match Engine.Failure_plan.to_string plan with "" -> "(no faults)" | s -> s);
        Fmt.pr "%a@." Engine.Runtime.pp_result result;
        List.iter (fun v -> Fmt.pr "VIOLATION %a@." Engine.Chaos.pp_violation v) violations;
        List.iter
          (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what)
          result.Engine.Runtime.trace
    | None, None ->
        let summary, wall =
          Sim.Clock.time (fun () ->
              Engine.Chaos.sweep ~profile ~until ~termination ~detector ~heartbeat_period
                ~suspicion_timeout ~election_timeout ~fencing ?presumption ?read_only
                ?group_commit ~sync_latency ~seed_base ~workers rb ~k ~seeds ())
        in
        Fmt.pr "%a@." Engine.Chaos.pp_summary summary;
        Fmt.pr "%.0f schedules/sec (%.2f s wall)@."
          (if wall > 0.0 then float_of_int seeds /. wall else 0.0)
          wall;
        List.iter
          (fun cx -> Fmt.pr "@.%a@." Engine.Chaos.pp_counterexample cx)
          summary.Engine.Chaos.counterexamples;
        Option.iter
          (fun f -> write_metrics_json f (Sim.Metrics.to_json summary.Engine.Chaos.metrics))
          metrics_json;
        if summary.Engine.Chaos.violations_by_oracle <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run randomized fault schedules (crashes, recoveries, duplicated/delayed messages; \
          partitions, drops and storage faults as opt-in ablations) against a protocol and judge \
          each run with the atomicity, nonblocking-progress, recovery-convergence and durability \
          oracles.  Violations are shrunk to a minimal replayable failure plan.  Exits 1 if any \
          violation was found.")
    Term.(
      const run $ protocol_opt $ sites_arg $ f_arg $ k_arg $ seeds_arg $ seed_base_arg $ workers_arg
      $ until_arg $ replay_arg $ plan_arg $ partitions_arg $ drops_arg $ quorum_arg $ disk_faults_arg
      $ lost_flush_arg $ kv_arg $ detector_arg $ no_fencing_arg $ detector_faults_arg
      $ heartbeat_arg $ suspicion_arg $ election_arg $ presumption_arg $ read_only_opt_arg
      $ group_commit_arg $ pipeline_arg $ sync_latency_arg $ metrics_json_arg)

(* ---------------- explore ---------------- *)

let explore_cmd =
  let protocol_opt =
    Arg.(
      required
      & opt (some protocol_conv) None
      & info [ "protocol" ] ~docv:"PROTOCOL"
          ~doc:
            "Protocol: central-2pc, decentralized-2pc, central-3pc, decentralized-3pc \
             (engine harness); with $(b,--kv) also paxos-commit.")
  in
  let kv_arg =
    Arg.(
      value & flag
      & info [ "kv" ]
          ~doc:
            "Explore the database harness instead of a bare protocol instance: plans run \
             against the bank-transfer workload under the kv oracles.")
  in
  let budget_arg =
    Arg.(
      value & opt int 256
      & info [ "budget" ] ~docv:"B" ~doc:"Number of plans to execute (mutants or random).")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("guided", `Guided); ("random", `Random) ]) `Guided
      & info [ "mode" ] ~docv:"guided|random"
          ~doc:
            "guided: mutate the novelty-ranked corpus; random: the classic chaos sweep at \
             the same budget (the baseline the bench compares against).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory: existing *.plan files seed the search, and the final corpus \
             (plus bug-*.plan shrunk violations) is written back, one replayable \
             $(b,Failure_plan.to_string) line per file.")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Replay every *.plan in $(b,--corpus) once instead of searching, and report each \
             plan's oracle verdicts — the corpus regression check.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Evaluate candidate plans across W domains.  Candidates are derived and folded \
             sequentially, so the search result is byte-identical whatever W is.")
  in
  let f_arg =
    Arg.(
      value & opt int 1
      & info [ "f" ] ~docv:"F" ~doc:"Paxos Commit only: tolerated acceptor failures.")
  in
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Maximum concurrent failures to inject.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Root seed of the search stream.")
  in
  let storms_arg =
    Arg.(
      value & flag
      & info [ "storms" ]
          ~doc:
            "Arm crash-recover storms in the random baseline's fault profile (guided \
             mutations can always add storm clauses).")
  in
  let run label n f k budget mode corpus replay workers kv seed storms =
    let storm_profile base =
      if storms then { base with Sim.Nemesis.p_storm = 0.7 } else base
    in
    let harness =
      if kv then begin
        let protocol =
          match label with
          | "central-2pc" -> Kv.Node.Two_phase
          | "central-3pc" -> Kv.Node.Three_phase
          | "paxos-commit" -> Kv.Node.Paxos f
          | other ->
              Fmt.epr
                "skeen explore --kv: unsupported protocol %s (use central-2pc, central-3pc \
                 or paxos-commit)@."
                other;
              exit 2
        in
        let n_sites = if n = 3 then 4 else n in
        Helpers_bench.kv_harness ~protocol ~n_sites ~fencing:true
          ~profile:(storm_profile Kv.Chaos_db.default_profile)
          ~k ()
      end
      else if label = "paxos-commit" then begin
        Fmt.epr
          "skeen explore: the engine harness does not cover paxos-commit; use --kv \
           --protocol paxos-commit@.";
        exit 2
      end
      else
        Engine.Explore.engine_harness
          ~profile:(storm_profile Sim.Nemesis.default_profile)
          ~k
          (Engine.Rulebook.compile (build label n))
    in
    if replay then begin
      match corpus with
      | None ->
          Fmt.epr "skeen explore: --replay needs --corpus DIR@.";
          exit 2
      | Some dir ->
          let entries = Engine.Explore.load_corpus ~dir in
          if entries = [] then begin
            Fmt.epr "skeen explore: no *.plan files under %s@." dir;
            exit 2
          end;
          let reports = Engine.Explore.replay ~workers harness (List.map snd entries) in
          let tripped = ref 0 in
          List.iter2
            (fun (name, _) (plan, report) ->
              let vs = report.Engine.Explore.violations in
              if vs <> [] then incr tripped;
              Fmt.pr "%s: %s@.  plan: %s@." name
                (if vs = [] then "clean"
                 else
                   String.concat ", "
                     (List.map (fun (o, d) -> Printf.sprintf "%s (%s)" o d) vs))
                (match Engine.Failure_plan.to_string plan with "" -> "(no faults)" | s -> s))
            entries reports;
          Fmt.pr "@.%d/%d plans tripped an oracle@." !tripped (List.length entries)
    end
    else begin
      let initial =
        match corpus with
        | Some dir -> List.map snd (Engine.Explore.load_corpus ~dir)
        | None -> []
      in
      if initial <> [] then
        Fmt.epr "seeding the search from %d corpus plan(s)@." (List.length initial);
      let progress ~runs ~coverage ~bugs =
        Fmt.epr "  %d/%d runs, %d features, %d distinct bugs@." runs budget coverage bugs
      in
      let result, wall =
        Sim.Clock.time (fun () ->
            Engine.Explore.search ~workers ~seed ~initial ~progress harness ~mode ~budget ())
      in
      Fmt.pr "%s %s: %d runs, %d coverage features, corpus %d, %d violating runs (%.2f s)@."
        result.Engine.Explore.harness_name
        (Engine.Explore.mode_name result.Engine.Explore.mode)
        result.Engine.Explore.runs result.Engine.Explore.coverage
        (List.length result.Engine.Explore.corpus)
        result.Engine.Explore.violating_runs wall;
      List.iter
        (fun (b : Engine.Explore.bug) ->
          Fmt.pr "@.bug (%s, first at run %d): %s@.  shrunk (%d faults, %d shrink runs): %s@."
            b.Engine.Explore.bug_oracle b.Engine.Explore.bug_found_at
            b.Engine.Explore.bug_detail
            (Engine.Failure_plan.fault_count b.Engine.Explore.bug_shrunk)
            b.Engine.Explore.bug_shrink_runs
            (match Engine.Failure_plan.to_string b.Engine.Explore.bug_shrunk with
            | "" -> "(no faults)"
            | s -> s))
        result.Engine.Explore.bugs;
      match corpus with
      | Some dir ->
          Engine.Explore.save_corpus ~dir result;
          Fmt.pr "@.corpus saved to %s@." dir
      | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Coverage-guided exploration of the fault-schedule space: plans that exercise unseen \
          protocol behaviour join a corpus, mutants of corpus entries (add/remove/retime/\
          retarget a fault, widen a window, add a crash-recover storm, splice two plans) are \
          scheduled next, violations are shrunk to minimal replayable plans.  The corpus \
          persists as *.plan text files for $(b,--replay) or pinned regression tests.")
    Term.(
      const run $ protocol_opt $ sites_arg $ f_arg $ k_arg $ budget_arg $ mode_arg $ corpus_arg
      $ replay_arg $ workers_arg $ kv_arg $ seed_arg $ storms_arg)

(* ---------------- model-check ---------------- *)

let model_check_cmd =
  let crashes_arg =
    Arg.(value & opt int 1 & info [ "k"; "crashes" ] ~docv:"K" ~doc:"Maximum number of crashes.")
  in
  let limit_arg =
    Arg.(value & opt int 4_000_000 & info [ "limit" ] ~docv:"N" ~doc:"State exploration limit.")
  in
  let run label n k limit =
    let rb = Engine.Rulebook.compile (build label n) in
    let r = Engine.Model_check.run { Engine.Model_check.rulebook = rb; max_crashes = k; limit; rule = `Skeen } in
    Fmt.pr "%a@." Engine.Model_check.pp_report r;
    match r.Engine.Model_check.counterexample with
    | Some path ->
        Fmt.pr "counterexample:@.";
        List.iteri (fun i st -> Fmt.pr "%2d: %a@." i Engine.Model_check.pp_st st) path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "model-check"
       ~doc:
         "Exhaustively verify a protocol (with its termination protocol) under up to K crashes: \
          no interleaving may violate atomicity, and for nonblocking protocols every terminal \
          state must have all operational sites decided.")
    Term.(const run $ protocol_arg $ sites_arg $ crashes_arg $ limit_arg)

(* ---------------- check ---------------- *)

let check_cmd =
  let crashes_arg =
    Arg.(value & opt int 1 & info [ "k"; "crashes" ] ~docv:"K" ~doc:"Maximum number of crashes.")
  in
  let limit_arg =
    Arg.(value & opt int 4_000_000 & info [ "limit" ] ~docv:"N" ~doc:"State exploration limit.")
  in
  let bench_arg =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:"Report wall-clock time, states/sec and peak resident states for the run.")
  in
  let run label n k limit bench =
    let rb = Engine.Rulebook.compile (build label n) in
    let cfg = { Engine.Model_check.rulebook = rb; max_crashes = k; limit; rule = `Skeen } in
    let r, wall = Sim.Clock.time (fun () -> Engine.Model_check.run cfg) in
    Fmt.pr "%a@." Engine.Model_check.pp_report r;
    if bench then
      Fmt.pr "wall: %.3f s, %.0f states/sec, peak resident states: %d@." wall
        (if wall > 0.0 then float_of_int r.Engine.Model_check.explored /. wall else 0.0)
        r.Engine.Model_check.explored;
    match r.Engine.Model_check.counterexample with
    | Some path ->
        Fmt.pr "counterexample:@.";
        List.iteri (fun i st -> Fmt.pr "%2d: %a@." i Engine.Model_check.pp_st st) path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively verify a protocol with the interned state-space engine; $(b,--bench) \
          additionally reports wall-clock throughput (states/sec) and peak resident states.")
    Term.(const run $ protocol_arg $ sites_arg $ crashes_arg $ limit_arg $ bench_arg)

(* ---------------- election ---------------- *)

let election_cmd =
  let crash =
    Arg.(
      value & opt_all (pair ~sep:'@' int float) []
      & info [ "crash" ] ~docv:"S@T" ~doc:"Crash site S at time T (repeatable).")
  in
  let recover =
    Arg.(
      value & opt_all (pair ~sep:'@' int float) []
      & info [ "recover" ] ~docv:"S@T" ~doc:"Recover site S at time T (repeatable).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.") in
  let run n crashes recoveries seed =
    let t = Engine.Election.create ~n_sites:n ~seed () in
    ignore (Engine.Election.run t ~crashes ~recoveries ());
    List.iter
      (fun s ->
        Fmt.pr "site %d: leader %a, witnessed %a@." s
          Fmt.(option ~none:(any "none") int)
          (Engine.Election.leader_at t ~site:s)
          Fmt.(list ~sep:comma (pair ~sep:(any "@") int (fmt "%.1f")))
          (List.map (fun (at, l) -> (l, at)) (Engine.Election.leader_history t ~site:s)))
      (List.init n (fun i -> i + 1));
    Fmt.pr "agreement among operational sites: %b@." (Engine.Election.agreement t)
  in
  Cmd.v
    (Cmd.info "election" ~doc:"Run the bully election protocol under a crash schedule.")
    Term.(const run $ sites_arg $ crash $ recover $ seed)

(* ---------------- bank ---------------- *)

let bank_cmd =
  let three_phase =
    Arg.(value & opt bool true & info [ "three-phase" ] ~docv:"BOOL" ~doc:"Use 3PC (true) or 2PC (false).")
  in
  let txns = Arg.(value & opt int 200 & info [ "txns" ] ~docv:"N" ~doc:"Number of transfers.") in
  let crash_site = Arg.(value & opt (some int) None & info [ "crash-site" ] ~docv:"S" ~doc:"Crash site S mid-run.") in
  let crash_at = Arg.(value & opt float 60.0 & info [ "crash-at" ] ~docv:"T" ~doc:"Crash time.") in
  let recover_at = Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"T" ~doc:"Recovery time.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload and simulation seed.") in
  let quorum =
    Arg.(value & flag & info [ "quorum" ] ~doc:"Terminate orphaned transactions by majority quorum.")
  in
  let isolate =
    Arg.(
      value
      & opt (some int) None
      & info [ "isolate" ] ~docv:"S" ~doc:"Partition site S away from t=40 to t=160.")
  in
  let presumption =
    Arg.(
      value
      & opt (some (enum [ ("abort", `Abort); ("commit", `Commit) ])) None
      & info [ "presumption" ] ~docv:"abort|commit"
          ~doc:"Commit presumption (skip forcing the covered outcome's decision record).")
  in
  let read_only_opt =
    Arg.(
      value & flag
      & info [ "read-only-opt" ]
          ~doc:"Read-only participants vote and drop out without forcing their log.")
  in
  let group_commit =
    Arg.(
      value & opt int 0
      & info [ "group-commit" ] ~docv:"N"
          ~doc:
            "Coalesce up to N concurrent log forces into one shared sync (straggler timer \
             0.05 s); 0 disables.  Only observable with a nonzero $(b,--sync-latency).")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"D"
          ~doc:"Coordinator pipelining depth: admit while fewer than D forces are in flight.")
  in
  let sync_latency =
    Arg.(
      value & opt float 0.0
      & info [ "sync-latency" ] ~docv:"T"
          ~doc:"Simulated disk sync latency in seconds (0 = synchronous forces).")
  in
  let run n three_phase txns crash_site crash_at recover_at seed quorum isolate presumption
      read_only_opt group_commit pipeline_depth sync_latency metrics_json =
    let accounts = 32 and initial_balance = 100 in
    let rng = Sim.Rng.create ~seed in
    let wl = Kv.Workload.bank rng ~n_txns:txns ~accounts ~arrival_rate:1.0 in
    let presumption =
      match presumption with
      | None -> Kv.Node.No_presumption
      | Some `Abort -> Kv.Node.Presume_abort
      | Some `Commit -> Kv.Node.Presume_commit
    in
    let group_commit =
      if group_commit > 0 then Some { Kv.Kv_wal.max_batch = group_commit; max_wait = 0.05 }
      else None
    in
    let cfg =
      Kv.Db.config ~n_sites:n
        ~protocol:(if three_phase then Kv.Node.Three_phase else Kv.Node.Two_phase)
        ~termination:(if quorum then Kv.Node.T_quorum ((n / 2) + 1) else Kv.Node.T_skeen)
        ~presumption ~read_only_opt ?group_commit ~pipeline_depth ~sync_latency ~seed
        ~crashes:(match crash_site with Some s -> [ (s, crash_at) ] | None -> [])
        ~recoveries:
          (match (crash_site, recover_at) with Some s, Some t -> [ (s, t) ] | _ -> [])
        ~partitions:
          (match isolate with
          | Some s ->
              [ (40.0, 160.0, [ List.filter (fun x -> x <> s) (List.init n (fun i -> i + 1)); [ s ] ]) ]
          | None -> [])
        ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance)
        ()
    in
    let r = Kv.Db.run cfg wl in
    Fmt.pr "%a@." Kv.Db.pp_result r;
    Fmt.pr "bank total: expected %d, measured %d@."
      (Kv.Workload.bank_total ~accounts ~initial_balance)
      r.Kv.Db.storage_totals;
    Option.iter (fun f -> write_metrics_json f r.Kv.Db.metrics_json) metrics_json
  in
  Cmd.v
    (Cmd.info "bank" ~doc:"Run the bank-transfer workload on the distributed KV store.")
    Term.(
      const run $ sites_arg $ three_phase $ txns $ crash_site $ crash_at $ recover_at $ seed
      $ quorum $ isolate $ presumption $ read_only_opt $ group_commit $ pipeline $ sync_latency
      $ metrics_json_arg)

let () =
  let doc = "Nonblocking commit protocols (Skeen, SIGMOD 1981): analysis and simulation." in
  (* cmdliner renders one-character names as short options only; accept the
     long spellings --n and --k as synonyms of -n and -k *)
  let argv =
    Array.map (function "--n" -> "-n" | "--k" -> "-k" | "--f" -> "-f" | s -> s) Sys.argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "skeen" ~doc)
          [
            analyze_cmd;
            graph_cmd;
            concurrency_cmd;
            rulebook_cmd;
            fsa_cmd;
            synthesize_cmd;
            simulate_cmd;
            chaos_cmd;
            explore_cmd;
            model_check_cmd;
            check_cmd;
            election_cmd;
            bank_cmd;
          ]))
