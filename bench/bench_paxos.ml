(** Three-way fault-survival differential: 2PC vs 3PC+termination vs
    Paxos Commit, on the cost axis (messages, forced WAL writes, rounds
    to decision) and the survival axis (which pinned fault classes each
    family decides under).  Writes [BENCH_paxos.json] so every future PR
    carries the replicated-coordinator trajectory:

    - cost rows: one failure-free transaction at n=5 per family,
      including Paxos at F=0 (the degenerate 2PC configuration), F=1
      and F=2 — replication cost must grow with F;
    - fault matrix: every family against the pinned coordinator-crash
      plan (the seed-35 2PC blocker), the PR-5 three-fault split-brain
      plan, an acceptor crash and a lease fault, each cell judged
      survived / blocked / unsafe / unsupported;
    - sweep rows: 500-seed acceptor-crash + lease-fault chaos sweeps on
      both harnesses (engine F=1/F=2, database F=1), which must be
      clean on all five oracles.

    [--smoke] (wired to the [@paxos-smoke] dune alias) runs a
    seconds-long corpus asserting the differential's shape: 2PC blocks
    under the coordinator crash while Paxos F=1 stays live, Paxos F=1
    survives the split-brain plan outright, 3PC stays safe under both,
    F=1 costs more messages than F=0, and 25-seed sweeps on both
    harnesses are clean.  Exits non-zero on any unexpected result, and
    still writes a smoke-sized [BENCH_paxos.json] so CI always uploads
    differential evidence. *)

module EC = Engine.Chaos
module EP = Engine.Paxos
module FP = Engine.Failure_plan

let time = Helpers_bench.time
let rate = Helpers_bench.rate

let n_sites = 5

(* ---------------- the three families ---------------- *)

type family = Two_pc | Three_pc | Paxos of int

let family_label = function
  | Two_pc -> "central-2pc"
  | Three_pc -> "central-3pc"
  | Paxos _ -> "paxos-commit"

let family_name = function
  | Two_pc -> "central-2pc"
  | Three_pc -> "central-3pc"
  | Paxos f -> Fmt.str "paxos-commit f=%d" f

let families = [ Two_pc; Three_pc; Paxos 0; Paxos 1; Paxos 2 ]

let rb_2pc = lazy (Engine.Rulebook.compile (Core.Catalog.central_2pc n_sites))
let rb_3pc = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc n_sites))

(* ---------------- cost rows: one failure-free transaction ---------------- *)

let cost_row family =
  let r =
    match family with
    | Two_pc -> Engine.Runtime.run (Engine.Runtime.config (Lazy.force rb_2pc))
    | Three_pc -> Engine.Runtime.run (Engine.Runtime.config (Lazy.force rb_3pc))
    | Paxos f -> EP.run (EP.config ~n_sites ~f ())
  in
  let m = r.Engine.Runtime.run_metrics in
  let rounds =
    (* 2PC and 3PC rounds are structural (vote-req/vote/outcome, plus
       precommit/ack); Paxos rounds are measured — recovery ballots add
       phase-1/phase-2 round trips *)
    match family with
    | Two_pc -> 3.0
    | Three_pc -> 5.0
    | Paxos _ -> (
        match Sim.Metrics.summarize m "rounds_to_decision" with
        | Some s -> s.Sim.Metrics.mean
        | None -> Float.nan)
  in
  ( family,
    r,
    Sim.Json.Obj
      [
        ("family", Sim.Json.Str (family_name family));
        ("f", match family with Paxos f -> Sim.Json.Int f | _ -> Sim.Json.Null);
        ("n", Sim.Json.Int n_sites);
        ("messages", Sim.Json.Int r.Engine.Runtime.messages_sent);
        ("wal_forces", Sim.Json.Int (Sim.Metrics.counter m "wal_forces"));
        ("rounds_to_decision", Sim.Json.Float rounds);
        ("decided", Sim.Json.Bool r.Engine.Runtime.all_operational_decided);
      ] )

(* ---------------- fault matrix ---------------- *)

(* the seed-35 chaos counterexample: coordinator dies before its first
   transition — the textbook 2PC blocker *)
let coordinator_crash = "step-crash site=1 step=1 mode=before"

(* the PR-5 three-fault plan that forces fencing in 3PC: coordinator
   dies mid-broadcast, a backup stalls through the election, the
   elected backup decides and crashes before announcing *)
let split_brain =
  "step-crash site=1 step=1 mode=after-logging:1; stall site=2 from=4 until=14; decide-crash \
   site=3 sent=0"

(* Paxos-only clauses: 2PC/3PC cells report [unsupported], exactly what
   the CLI's family validation would tell the user *)
let acceptor_crash ~f = if f = 0 then "acceptor-crash site=1 at=2" else "acceptor-crash site=5 at=2"
let lease_fault = "lease-fault at=2"

let fault_classes =
  [
    ("coordinator-crash", fun _ -> coordinator_crash);
    ("split-brain-3fault", fun _ -> split_brain);
    ("acceptor-crash", fun f -> acceptor_crash ~f);
    ("lease-fault", fun _ -> lease_fault);
  ]

(* survived: every operational site decided and all five oracles are
   clean.  blocked: safety held but progress did not.  unsafe: a
   non-progress oracle fired — a regression whatever the family. *)
let status ~decided violations =
  if List.exists (fun (v : EC.violation) -> v.EC.oracle <> EC.Progress) violations then "unsafe"
  else if violations = [] && decided then "survived"
  else "blocked"

let matrix_cell family (class_name, plan_of) =
  let f = match family with Paxos f -> f | _ -> 0 in
  let plan_s = plan_of f in
  let plan = FP.of_string_exn plan_s in
  let unsupported = FP.unsupported_clauses ~protocol:(family_label family) plan in
  let cell_status, decided, violations =
    if unsupported <> [] then ("unsupported", Sim.Json.Null, [])
    else
      match family with
      | Two_pc | Three_pc ->
          let rb = Lazy.force (if family = Two_pc then rb_2pc else rb_3pc) in
          (* detector + fencing are the PR-5/PR-6 termination levers the
             split-brain plan was built to exercise *)
          let r, vs = EC.run_plan ~detector:true ~fencing:true rb ~plan ~seed:35 () in
          let d = r.Engine.Runtime.all_operational_decided in
          (status ~decided:d vs, Sim.Json.Bool d, vs)
      | Paxos f ->
          let cfg = EP.config ~plan ~seed:35 ~n_sites ~f () in
          let r = EP.run cfg in
          let vs = EP.violations ~cfg r in
          let d = r.Engine.Runtime.all_operational_decided in
          (status ~decided:d vs, Sim.Json.Bool d, vs)
  in
  ( (family, class_name, cell_status),
    Sim.Json.Obj
      [
        ("family", Sim.Json.Str (family_name family));
        ("fault_class", Sim.Json.Str class_name);
        ("plan", Sim.Json.Str plan_s);
        ("status", Sim.Json.Str cell_status);
        ("decided", decided);
        ( "violations",
          Sim.Json.List
            (List.map (fun (v : EC.violation) -> Sim.Json.Str (EC.oracle_name v.EC.oracle)) violations)
        );
      ] )

(* ---------------- sweep rows ---------------- *)

let engine_sweep_row ~f ~k ~seeds =
  Fmt.epr "paxos sweep (engine) n=%d f=%d k=%d seeds=%d...@." n_sites f k seeds;
  let s, wall = time (fun () -> EP.sweep ~n_sites ~f ~k ~seeds ()) in
  ( List.length s.EP.ps_failing,
    Sim.Json.Obj
      [
        ("harness", Sim.Json.Str "engine");
        ("f", Sim.Json.Int f);
        ("n", Sim.Json.Int n_sites);
        ("k", Sim.Json.Int k);
        ("seeds", Sim.Json.Int s.EP.ps_seeds_run);
        ("failing", Sim.Json.Int (List.length s.EP.ps_failing));
        ("wall_s", Sim.Json.Float wall);
        ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ] )

(* aim faults at the replicated-coordinator state: the KV harness puts
   the 2f+1 acceptors on the lowest-numbered sites *)
let kv_paxos_profile ~f =
  {
    Kv.Chaos_db.default_profile with
    Sim.Nemesis.p_acceptor_crash = 0.5;
    acceptor_sites = List.init ((2 * f) + 1) (fun i -> i + 1);
    max_acceptor_crashes = f;
    p_lease_fault = 0.3;
  }

let kv_sweep_row ~f ~k ~seeds =
  Fmt.epr "paxos sweep (kv) n=%d f=%d k=%d seeds=%d...@." n_sites f k seeds;
  let s, wall =
    time (fun () ->
        Kv.Chaos_db.sweep ~profile:(kv_paxos_profile ~f) ~protocol:(Kv.Node.Paxos f) ~n_sites ~k
          ~seeds ())
  in
  ( List.length s.Kv.Chaos_db.failing,
    Sim.Json.Obj
      [
        ("harness", Sim.Json.Str "kv");
        ("f", Sim.Json.Int f);
        ("n", Sim.Json.Int n_sites);
        ("k", Sim.Json.Int k);
        ("seeds", Sim.Json.Int s.Kv.Chaos_db.seeds_run);
        ("failing", Sim.Json.Int (List.length s.Kv.Chaos_db.failing));
        ("wall_s", Sim.Json.Float wall);
        ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ] )

(* ---------------- report + gates ---------------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Fmt.epr "UNEXPECTED %s@." what
  end

let cell_status cells family class_name =
  let (_, _, s), _ =
    List.find (fun ((fam, c, _), _) -> fam = family && c = class_name) cells
  in
  s

let run ~smoke =
  let sweep_seeds = if smoke then 25 else 500 in
  let costs = List.map cost_row families in
  let cells = List.concat_map (fun fam -> List.map (matrix_cell fam) fault_classes) families in
  let e1_failing, e1_row = engine_sweep_row ~f:1 ~k:2 ~seeds:sweep_seeds in
  let e2_failing, e2_row = engine_sweep_row ~f:2 ~k:2 ~seeds:sweep_seeds in
  let kv_failing, kv_row = kv_sweep_row ~f:1 ~k:2 ~seeds:sweep_seeds in

  (* the differential's shape — every gate is a regression alarm *)
  let msgs fam =
    let _, r, _ = List.find (fun (f, _, _) -> f = fam) costs in
    r.Engine.Runtime.messages_sent
  in
  List.iter
    (fun (fam, r, _) ->
      check
        (Fmt.str "%s did not decide failure-free" (family_name fam))
        r.Engine.Runtime.all_operational_decided)
    costs;
  check "paxos f=1 not costlier than f=0 in messages" (msgs (Paxos 1) > msgs (Paxos 0));
  check "paxos f=2 not costlier than f=1 in messages" (msgs (Paxos 2) > msgs (Paxos 1));
  check "2pc survived the coordinator crash"
    (cell_status cells Two_pc "coordinator-crash" = "blocked");
  check "3pc blocked on the coordinator crash"
    (cell_status cells Three_pc "coordinator-crash" = "survived");
  check "3pc unsafe under the split-brain plan"
    (cell_status cells Three_pc "split-brain-3fault" <> "unsafe");
  List.iter
    (fun cls ->
      check
        (Fmt.str "paxos f=1 did not survive %s" cls)
        (cell_status cells (Paxos 1) cls = "survived");
      check
        (Fmt.str "paxos f=2 did not survive %s" cls)
        (cell_status cells (Paxos 2) cls = "survived"))
    [ "coordinator-crash"; "split-brain-3fault"; "acceptor-crash"; "lease-fault" ];
  (* f=0 is the degenerate single-replica configuration: losing its one
     acceptor must block it (never corrupt it) *)
  check "paxos f=0 survived losing its only acceptor"
    (cell_status cells (Paxos 0) "acceptor-crash" = "blocked");
  List.iter
    (fun ((fam, cls, s), _) ->
      check (Fmt.str "%s unsafe under %s" (family_name fam) cls) (s <> "unsafe"))
    cells;
  check "engine f=1 sweep not clean" (e1_failing = 0);
  check "engine f=2 sweep not clean" (e2_failing = 0);
  check "kv f=1 sweep not clean" (kv_failing = 0);

  let report = Sim.Report.create ~bench_name:"paxos" () in
  Sim.Report.add report "smoke" (Sim.Json.Bool smoke);
  Sim.Report.add report "cost" (Sim.Json.List (List.map (fun (_, _, j) -> j) costs));
  Sim.Report.add report "fault_matrix" (Sim.Json.List (List.map snd cells));
  Sim.Report.add report "sweeps" (Sim.Json.List [ e1_row; e2_row; kv_row ]);
  let file = "BENCH_paxos.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file;
  if !failures > 0 then begin
    Fmt.epr "paxos%s: %d unexpected result(s)@." (if smoke then "-smoke" else "") !failures;
    exit 1
  end;
  if smoke then
    Fmt.pr
      "paxos-smoke: 2PC blocks on the coordinator crash, Paxos F>=1 survives all four fault \
       classes, F=0 degenerates safely, and %d-seed sweeps on both harnesses are clean@."
      sweep_seeds

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> run ~smoke:true
  | _ -> run ~smoke:false
