(** Wall-clock benchmark of the chaos harness: sweeps randomized fault
    schedules over the protocol catalog (and the database harness) and
    writes schedules/sec, per-oracle violation counts and shrinking cost
    to [BENCH_chaos.json], so every future PR has both a perf trajectory
    and a correctness trajectory — 3PC rows must stay clean, the 2PC row
    must keep reporting its textbook blocking counterexample.

    [--smoke] instead runs a seconds-long fixed-seed corpus (wired to
    the [@chaos-smoke] dune alias): central-2pc must yield at least one
    progress violation shrinkable to <= 2 faults and no atomicity
    violation; central-3pc and decentralized-3pc must be clean; the
    database harness under 3PC must be clean.  Exits non-zero on any
    unexpected result. *)

let time = Helpers_bench.time
let rate = Helpers_bench.rate
let count_for = Helpers_bench.count_for

(* [--workers N] shards every seed sweep below across N domains via
   Sim.Sweep; results are byte-identical whatever the value. *)
let workers = Helpers_bench.arg_int "--workers" ~default:1 Sys.argv

(* ---------------- full bench: protocol-level rows ---------------- *)

(* expected_blocking marks rows where violations are the *correct*
   outcome (Skeen: 2PC blocks on a coordinator crash); a regression is a
   clean 2PC row just as much as a dirty 3PC row. *)
let engine_configs =
  [
    ("central-2pc", Core.Catalog.central_2pc, 3, 1, 500, true);
    ("central-2pc", Core.Catalog.central_2pc, 4, 1, 300, true);
    ("decentralized-2pc", Core.Catalog.decentralized_2pc, 3, 1, 300, true);
    ("central-3pc", Core.Catalog.central_3pc, 3, 1, 500, false);
    ("central-3pc", Core.Catalog.central_3pc, 4, 2, 300, false);
    ("decentralized-3pc", Core.Catalog.decentralized_3pc, 3, 1, 300, false);
  ]

let engine_row (label, build, n, k, seeds, expected_blocking) =
  Fmt.epr "chaos %s n=%d k=%d seeds=%d...@." label n k seeds;
  let rb = Engine.Rulebook.compile (build n) in
  let summary, wall = time (fun () -> Engine.Chaos.sweep rb ~workers ~k ~seeds ()) in
  let by = summary.Engine.Chaos.violations_by_oracle in
  let shrink_runs =
    List.fold_left
      (fun a cx -> a + cx.Engine.Chaos.cx_shrink_runs)
      0 summary.Engine.Chaos.counterexamples
  in
  let min_shrunk =
    List.fold_left
      (fun a cx -> min a cx.Engine.Chaos.cx_shrunk_faults)
      max_int summary.Engine.Chaos.counterexamples
  in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "protocol");
      ("protocol", Sim.Json.Str label);
      ("n", Sim.Json.Int n);
      ("k", Sim.Json.Int k);
      ("seeds", Sim.Json.Int seeds);
      ("wall_s", Sim.Json.Float wall);
      ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ("violations_atomicity", Sim.Json.Int (count_for by Engine.Chaos.Atomicity));
      ("violations_progress", Sim.Json.Int (count_for by Engine.Chaos.Progress));
      ( "violations_recovery",
        Sim.Json.Int (count_for by Engine.Chaos.Recovery_convergence) );
      ("counterexamples_shrunk", Sim.Json.Int (List.length summary.Engine.Chaos.counterexamples));
      ("shrink_runs", Sim.Json.Int shrink_runs);
      ( "min_shrunk_faults",
        if min_shrunk = max_int then Sim.Json.Null else Sim.Json.Int min_shrunk );
      ("expected_blocking", Sim.Json.Bool expected_blocking);
      (* chaos_runs/shrink_runs counters and the per-oracle wall_oracle_*_s
         timing histograms *)
      ("metrics", Sim.Metrics.to_json summary.Engine.Chaos.metrics);
    ]

(* ---------------- full bench: database-harness rows ---------------- *)

let kv_configs =
  [
    (Kv.Node.Two_phase, "central-2pc", 4, 1, 150, true);
    (Kv.Node.Three_phase, "central-3pc", 4, 1, 150, false);
    (Kv.Node.Three_phase, "central-3pc", 4, 2, 100, false);
  ]

let kv_row (protocol, label, n, k, seeds, expected_blocking) =
  Fmt.epr "chaos --kv %s n=%d k=%d seeds=%d...@." label n k seeds;
  let summary, wall =
    time (fun () -> Kv.Chaos_db.sweep ~protocol ~n_sites:n ~workers ~k ~seeds ())
  in
  let by = summary.Kv.Chaos_db.violations_by_oracle in
  let min_shrunk =
    List.fold_left
      (fun a (_, _, shrunk) -> min a (List.length shrunk))
      max_int summary.Kv.Chaos_db.failing
  in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "kv");
      ("protocol", Sim.Json.Str label);
      ("n", Sim.Json.Int n);
      ("k", Sim.Json.Int k);
      ("seeds", Sim.Json.Int seeds);
      ("wall_s", Sim.Json.Float wall);
      ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ("violations_atomicity", Sim.Json.Int (count_for by Kv.Chaos_db.Atomicity));
      ("violations_progress", Sim.Json.Int (count_for by Kv.Chaos_db.Progress));
      ("violations_conservation", Sim.Json.Int (count_for by Kv.Chaos_db.Conservation));
      ("failing_seeds", Sim.Json.Int (List.length summary.Kv.Chaos_db.failing));
      ( "min_shrunk_faults",
        if min_shrunk = max_int then Sim.Json.Null else Sim.Json.Int min_shrunk );
      ("expected_blocking", Sim.Json.Bool expected_blocking);
    ]

let full () =
  let report = Sim.Report.create ~bench_name:"chaos" () in
  Sim.Report.add report "chaos" (Sim.Json.List (List.map engine_row engine_configs));
  Sim.Report.add report "chaos_kv" (Sim.Json.List (List.map kv_row kv_configs));
  let file = "BENCH_chaos.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

(* ---------------- smoke mode ---------------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Fmt.epr "UNEXPECTED %s@." what
  end

let smoke () =
  (* Fixed corpus: 120 seeds per protocol at n=3, k=1.  Seed 35 is the
     pinned 2PC blocking seed (shrinks to a single step-crash). *)
  let seeds = 120 in
  (* 2PC must block — and block only: atomicity must hold even though
     progress does not. *)
  let rb2 = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  let s2 = Engine.Chaos.sweep rb2 ~workers ~k:1 ~seeds () in
  let by2 = s2.Engine.Chaos.violations_by_oracle in
  check "central-2pc found no progress (blocking) violation"
    (count_for by2 Engine.Chaos.Progress > 0);
  check "central-2pc violated atomicity" (count_for by2 Engine.Chaos.Atomicity = 0);
  check "central-2pc produced no shrunk counterexample"
    (s2.Engine.Chaos.counterexamples <> []);
  List.iter
    (fun cx ->
      check
        (Fmt.str "seed %d counterexample has %d faults (> 2): %s" cx.Engine.Chaos.cx_seed
           cx.Engine.Chaos.cx_shrunk_faults
           (Engine.Failure_plan.to_string cx.Engine.Chaos.cx_plan))
        (cx.Engine.Chaos.cx_shrunk_faults <= 2))
    s2.Engine.Chaos.counterexamples;
  (* decentralized 2PC blocks too — its first blocking seed sits deeper
     in the corpus, hence the larger sweep *)
  let rbd2 = Engine.Rulebook.compile (Core.Catalog.decentralized_2pc 3) in
  let sd2 = Engine.Chaos.sweep rbd2 ~workers ~k:1 ~seeds:200 () in
  let byd2 = sd2.Engine.Chaos.violations_by_oracle in
  check "decentralized-2pc found no progress (blocking) violation"
    (count_for byd2 Engine.Chaos.Progress > 0);
  check "decentralized-2pc violated atomicity" (count_for byd2 Engine.Chaos.Atomicity = 0);
  List.iter
    (fun cx ->
      check
        (Fmt.str "decentralized-2pc seed %d counterexample has %d faults (> 2)"
           cx.Engine.Chaos.cx_seed cx.Engine.Chaos.cx_shrunk_faults)
        (cx.Engine.Chaos.cx_shrunk_faults <= 2))
    sd2.Engine.Chaos.counterexamples;
  (* both 3PC variants must be clean *)
  List.iter
    (fun (label, build) ->
      let rb = Engine.Rulebook.compile (build 3) in
      let s = Engine.Chaos.sweep rb ~workers ~k:1 ~seeds () in
      check
        (Fmt.str "%s reported violations" label)
        (s.Engine.Chaos.violations_by_oracle = []))
    [
      ("central-3pc", Core.Catalog.central_3pc);
      ("decentralized-3pc", Core.Catalog.decentralized_3pc);
    ];
  (* the database harness under 3PC must be clean, including the pinned
     regression seeds that found the precommit-to-dead-site and
     late-prepare-after-abort bugs *)
  let skv =
    Kv.Chaos_db.sweep ~protocol:Kv.Node.Three_phase ~n_sites:4 ~workers ~k:1 ~seeds:40 ()
  in
  check "kv central-3pc reported violations" (skv.Kv.Chaos_db.violations_by_oracle = []);
  List.iter
    (fun seed ->
      let o = Kv.Chaos_db.run_one ~n_sites:4 ~k:1 ~seed () in
      check
        (Fmt.str "kv central-3pc regression seed %d reported violations" seed)
        (o.Kv.Chaos_db.violations = []))
    [ 48; 176 ];
  if !failures > 0 then begin
    Fmt.epr "chaos-smoke: %d unexpected result(s)@." !failures;
    exit 1
  end;
  Fmt.pr
    "chaos-smoke: both 2PC paradigms block (shrunk to <= 2 faults, atomicity intact), 3PC \
     variants and the database harness are clean@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
