(** Guided-vs-random benchmark of the fault-space explorer: runs
    {!Engine.Explore.search} in both modes at equal budget on the
    protocol-engine and database harnesses and writes coverage growth,
    corpus size, violation yield and time-to-rediscover the pinned
    historical bugs to [BENCH_explore.json] — the trajectory every
    future PR diffs to check the guided search still earns its keep.

    The pinned rediscovery targets are the two textbook blocking bugs
    this repo's random sweeps found first: the engine's central-2PC
    coordinator step-crash wedge (shrinks to one fault,
    ["step-crash site=1 step=1 mode=before"]) and the kv harness's 2PC
    coordinator-crash wedge (shrinks to one timed crash).  A mode
    "rediscovers" a target when it shrinks a progress violation to a
    plan no larger than the pinned one.

    [--smoke] (the [@explore-smoke] dune alias) runs a tiny fixed
    budget: guided must match-or-beat equal-budget random on coverage
    edges on both harnesses and rediscover both wedges, and the guided
    corpora are saved under [corpus/] for the CI artifact.  Exits
    non-zero on any unexpected result. *)

let time = Helpers_bench.time
let rate = Helpers_bench.rate
let workers = Helpers_bench.arg_int "--workers" ~default:1 Sys.argv

type target = { t_oracle : string; t_max_faults : int }

(* pinned plans are single-fault, so rediscovery means "shrunk to <= 1
   fault under the same oracle" *)
let progress_wedge = { t_oracle = "progress"; t_max_faults = 1 }

let rediscovery (result : Engine.Explore.result) target =
  List.find_opt
    (fun (b : Engine.Explore.bug) ->
      b.Engine.Explore.bug_oracle = target.t_oracle
      && Engine.Failure_plan.fault_count b.Engine.Explore.bug_shrunk <= target.t_max_faults)
    result.Engine.Explore.bugs

let bug_json (b : Engine.Explore.bug) =
  Sim.Json.Obj
    [
      ("oracle", Sim.Json.Str b.Engine.Explore.bug_oracle);
      ("found_at_run", Sim.Json.Int b.Engine.Explore.bug_found_at);
      ( "shrunk_faults",
        Sim.Json.Int (Engine.Failure_plan.fault_count b.Engine.Explore.bug_shrunk) );
      ("plan", Sim.Json.Str (Engine.Failure_plan.to_string b.Engine.Explore.bug_shrunk));
    ]

let mode_json target ((result : Engine.Explore.result), wall) =
  let redisc = Option.map (fun b -> b.Engine.Explore.bug_found_at) (rediscovery result target) in
  Sim.Json.Obj
    [
      ("mode", Sim.Json.Str (Engine.Explore.mode_name result.Engine.Explore.mode));
      ("budget", Sim.Json.Int result.Engine.Explore.budget);
      ("wall_s", Sim.Json.Float wall);
      ("runs_per_sec", Sim.Json.Float (rate result.Engine.Explore.runs wall));
      ("coverage_edges", Sim.Json.Int result.Engine.Explore.coverage);
      ("corpus_size", Sim.Json.Int (List.length result.Engine.Explore.corpus));
      ("violating_runs", Sim.Json.Int result.Engine.Explore.violating_runs);
      ("bugs", Sim.Json.List (List.map bug_json result.Engine.Explore.bugs));
      ( "rediscovered_at_run",
        match redisc with Some r -> Sim.Json.Int r | None -> Sim.Json.Null );
      ( "coverage_curve",
        Sim.Json.List
          (List.map
             (fun (runs, cov) -> Sim.Json.List [ Sim.Json.Int runs; Sim.Json.Int cov ])
             result.Engine.Explore.curve) );
    ]

(* one harness row: guided and random at the same budget, same seed *)
let row ?corpus_dir ~label ~budget ~target harness =
  Fmt.epr "explore %s budget=%d (guided vs random)...@." label budget;
  let guided, g_wall =
    time (fun () -> Engine.Explore.search ~workers harness ~mode:`Guided ~budget ())
  in
  let random, r_wall =
    time (fun () -> Engine.Explore.search ~workers harness ~mode:`Random ~budget ())
  in
  (match corpus_dir with
  | Some dir -> Engine.Explore.save_corpus ~dir guided
  | None -> ());
  ( Sim.Json.Obj
      [
        ("harness", Sim.Json.Str label);
        ("n_sites", Sim.Json.Int harness.Engine.Explore.n_sites);
        ("guided", mode_json target (guided, g_wall));
        ("random", mode_json target (random, r_wall));
        ( "guided_minus_random_edges",
          Sim.Json.Int (guided.Engine.Explore.coverage - random.Engine.Explore.coverage) );
      ],
    guided,
    random )

let engine_2pc () =
  Engine.Explore.engine_harness ~k:1 (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))

let engine_3pc () =
  Engine.Explore.engine_harness ~k:1 (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))

let kv_2pc () = Helpers_bench.kv_harness ~protocol:Kv.Node.Two_phase ~fencing:true ~k:1 ()
let kv_3pc () = Helpers_bench.kv_harness ~protocol:Kv.Node.Three_phase ~fencing:true ~k:1 ()

(* ---------------- full bench ---------------- *)

let full () =
  let report = Sim.Report.create ~bench_name:"explore" () in
  let rows =
    [
      row ~label:"engine-central-2pc" ~budget:512 ~target:progress_wedge (engine_2pc ());
      row ~label:"engine-central-3pc" ~budget:512 ~target:progress_wedge (engine_3pc ());
      row ~label:"kv-2pc" ~budget:256 ~target:progress_wedge (kv_2pc ());
      row ~label:"kv-3pc" ~budget:256 ~target:progress_wedge (kv_3pc ());
    ]
  in
  Sim.Report.add report "explore" (Sim.Json.List (List.map (fun (j, _, _) -> j) rows));
  let file = "BENCH_explore.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

(* ---------------- smoke mode ---------------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Fmt.epr "UNEXPECTED %s@." what
  end

let smoke () =
  let report = Sim.Report.create ~bench_name:"explore" () in
  (* at tiny budgets the guided mode is still mostly bootstrapping from
     random plans; 96 is where the corpus reliably starts paying rent *)
  let budget = 96 in
  let judge ~label ~expect_wedge (json, guided, random) =
    check
      (Fmt.str "%s: guided coverage %d < random coverage %d" label
         guided.Engine.Explore.coverage random.Engine.Explore.coverage)
      (guided.Engine.Explore.coverage >= random.Engine.Explore.coverage);
    if expect_wedge then
      check
        (Fmt.str "%s: guided search never shrank a progress wedge to <= 1 fault" label)
        (rediscovery guided progress_wedge <> None);
    json
  in
  let engine_row =
    judge ~label:"engine-central-2pc" ~expect_wedge:true
      (row
         ~corpus_dir:(Filename.concat "corpus" "engine-central-2pc")
         ~label:"engine-central-2pc" ~budget ~target:progress_wedge (engine_2pc ()))
  in
  let kv_row =
    judge ~label:"kv-2pc" ~expect_wedge:true
      (row
         ~corpus_dir:(Filename.concat "corpus" "kv-2pc")
         ~label:"kv-2pc" ~budget ~target:progress_wedge (kv_2pc ()))
  in
  Sim.Report.add report "explore" (Sim.Json.List [ engine_row; kv_row ]);
  Sim.Report.write report ~file:"BENCH_explore.json";
  if !failures > 0 then begin
    Fmt.epr "explore-smoke: %d unexpected result(s)@." !failures;
    exit 1
  end;
  Fmt.pr
    "explore-smoke: guided >= random coverage on both harnesses, both 2PC coordinator-crash \
     wedges rediscovered and shrunk to one fault; corpora in corpus/@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
