(** The experiment harness: regenerates every figure/table of the paper
    (E1–E7 are the paper's analytical artifacts; E8–E12 are the
    quantitative experiments its claims predict).  Each experiment prints
    the artifact and a PASS/FAIL line comparing against the paper's
    statement; EXPERIMENTS.md records the correspondence. *)

let section id title = Fmt.pr "@.=== %s — %s ===@." id title

let verdict id ok = Fmt.pr "[%s] %s@." (if ok then "PASS" else "FAIL") id

let all_pass = ref true
let check id ok =
  if not ok then all_pass := false;
  verdict id ok

(* Machine-readable results, accumulated alongside the printed artifacts
   and exported by bench/main.ml as BENCH_results.json. *)
module J = Sim.Json

let results : (string * J.t) list ref = ref []
let record_result name json = results := (name, json) :: List.remove_assoc name !results
let results_json () = J.Obj (List.rev !results)

(* ------------------------------------------------------------------ *)

let e1_fsa_figures () =
  section "E1" "FSAs for the 2PC protocol (paper Fig. 1)";
  let p = Core.Catalog.central_2pc 3 in
  Fmt.pr "%a@." Core.Automaton.pp (Core.Protocol.automaton p 1);
  Fmt.pr "%a@." Core.Automaton.pp (Core.Protocol.automaton p 2);
  let coord = Core.Protocol.automaton p 1 and slave = Core.Protocol.automaton p 2 in
  check "E1 coordinator has states q,w,a,c"
    (List.sort compare (List.map (fun s -> s.Core.Automaton.id) coord.Core.Automaton.states)
    = [ "a"; "c"; "q"; "w" ]);
  check "E1 slave has 4 transitions (figure)" (List.length slave.Core.Automaton.transitions = 4);
  check "E1 both FSAs valid" (Core.Automaton.is_valid coord && Core.Automaton.is_valid slave)

let e2_reachable_graph () =
  section "E2" "Reachable state graph for the 2-site 2PC protocol (paper Fig. 2)";
  let p = Core.Catalog.central_2pc 2 in
  let g = Core.Reachability.build p in
  let s = Core.Reachability.stats g in
  Fmt.pr "%a@." Core.Reachability.pp_stats s;
  Fmt.pr "@.DOT rendering (paste into graphviz):@.%s@." (Core.Render.reachability_to_dot g);
  check "E2 no inconsistent global states" (s.Core.Reachability.inconsistent = 0);
  check "E2 no deadlocked states" (s.Core.Reachability.deadlocked = 0);
  check "E2 both outcomes reachable"
    (s.Core.Reachability.commit_reachable && s.Core.Reachability.abort_reachable);
  (* exponential growth claim *)
  let sizes = List.map (fun n -> (Core.Reachability.stats (Core.Reachability.build (Core.Catalog.central_2pc n))).Core.Reachability.states) [ 2; 3; 4; 5 ] in
  Fmt.pr "growth with sites: %a@." Fmt.(list ~sep:comma int) sizes;
  check "E2 growth is superlinear"
    (match sizes with [ a; b; c; d ] -> c - b > b - a && d - c > c - b | _ -> false)

let e3_concurrency_sets () =
  section "E3" "Concurrency sets in the canonical 2PC protocol (paper Fig. 8)";
  let g = Core.Reachability.build (Core.Catalog.decentralized_2pc 2) in
  print_string (Core.Render.concurrency_table g);
  let cs state = Helpers_bench.cs_ids g state in
  check "E3 CS(q) = {q,w,a}" (cs "q" = [ "a"; "q"; "w" ]);
  check "E3 CS(w) = {q,w,a,c}" (cs "w" = [ "a"; "c"; "q"; "w" ]);
  check "E3 CS(a) = {q,w,a}" (cs "a" = [ "a"; "q"; "w" ]);
  check "E3 CS(c) = {w,c}" (cs "c" = [ "c"; "w" ])

let e4_blocking_2pc () =
  section "E4" "Blocking analysis of 2PC, both paradigms (paper §3-4)";
  List.iter
    (fun (label, p, blocking_state) ->
      let r = Core.Nonblocking.analyze_protocol p in
      Fmt.pr "%a@.@." Core.Nonblocking.pp_report r;
      check (Fmt.str "E4 %s is blocking" label) (not r.Core.Nonblocking.nonblocking);
      check
        (Fmt.str "E4 %s: every violation is at state %s" label blocking_state)
        (List.for_all
           (fun v -> v.Core.Nonblocking.state = blocking_state)
           r.Core.Nonblocking.violations))
    [
      ("central 2PC", Core.Catalog.central_2pc 3, "w");
      ("decentralized 2PC", Core.Catalog.decentralized_2pc 3, "w");
      (* 1PC has no wait state: slaves block in q, before even learning of
         the transaction *)
      ("1PC", Core.Catalog.one_pc 3, "q");
    ]

let e5_buffer_synthesis () =
  section "E5" "Making the canonical 2PC protocol nonblocking (paper Fig. 9)";
  let synth = Core.Synthesis.buffer_skeleton Core.Skeleton.canonical_2pc in
  Fmt.pr "%a@." Core.Skeleton.pp synth;
  check "E5 canonical 2PC + buffer state = canonical 3PC"
    (Core.Skeleton.equal synth Core.Skeleton.canonical_3pc);
  let graph = Core.Reachability.build (Core.Catalog.central_2pc 3) in
  let { Core.Synthesis.protocol; buffers_added } = Core.Synthesis.buffer_protocol graph in
  Fmt.pr "message-level synthesis added buffer states: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
    buffers_added;
  let report = Core.Nonblocking.analyze_protocol protocol in
  check "E5 synthesized central protocol is nonblocking" report.Core.Nonblocking.nonblocking;
  let sync = Core.Synchrony.check protocol in
  check "E5 synthesized protocol stays synchronous" sync.Core.Synchrony.synchronous

let e6_3pc_nonblocking () =
  section "E6" "3PC is nonblocking, both paradigms (paper Figs. 10-11)";
  List.iter
    (fun (label, build) ->
      List.iter
        (fun n ->
          let r = Core.Nonblocking.analyze_protocol (build n) in
          Fmt.pr "%s n=%d: %s, resilience %d@." label n
            (if r.Core.Nonblocking.nonblocking then "NONBLOCKING" else "BLOCKING")
            r.Core.Nonblocking.resilience;
          check (Fmt.str "E6 %s n=%d nonblocking" label n) r.Core.Nonblocking.nonblocking;
          check
            (Fmt.str "E6 %s n=%d resilient to n-1 failures (corollary)" label n)
            (r.Core.Nonblocking.resilience = n - 1))
        [ 2; 3; 4 ])
    [ ("central 3PC", Core.Catalog.central_3pc); ("decentralized 3PC", Core.Catalog.decentralized_3pc) ]

let e7_decision_rule () =
  section "E7" "Termination protocol decision rule (paper Fig. 12)";
  List.iter
    (fun state ->
      Fmt.pr "backup coordinator in %s -> %a@." state Core.Termination_rule.pp_decision
        (Core.Termination_rule.decide_skeleton Core.Skeleton.canonical_3pc ~state))
    [ "q"; "w"; "p"; "a"; "c" ];
  let d s = Core.Termination_rule.decide_skeleton Core.Skeleton.canonical_3pc ~state:s in
  check "E7 commit iff state in {p, c}"
    (d "p" = Core.Types.Committed && d "c" = Core.Types.Committed && d "q" = Core.Types.Aborted
    && d "w" = Core.Types.Aborted && d "a" = Core.Types.Aborted);
  check "E7 rule safe everywhere for 3PC"
    (Core.Termination_rule.unsafe_states (Core.Reachability.build (Core.Catalog.central_3pc 3)) = []);
  check "E7 rule unsafe at 2PC slaves' w"
    (List.sort compare
       (Core.Termination_rule.unsafe_states (Core.Reachability.build (Core.Catalog.central_2pc 3)))
    = [ (2, "w"); (3, "w") ])

(* ------------------------------------------------------------------ *)
(* quantitative experiments                                            *)
(* ------------------------------------------------------------------ *)

(* systematic single-crash enumeration for one protocol *)
let crash_census rb ~n =
  let modes =
    [
      Engine.Failure_plan.Before_transition;
      Engine.Failure_plan.After_logging 0;
      Engine.Failure_plan.After_logging 1;
      Engine.Failure_plan.After_transition;
    ]
  in
  let runs = ref 0 and blocked = ref 0 and inconsistent = ref 0 in
  List.iter
    (fun site ->
      List.iter
        (fun step ->
          List.iter
            (fun mode ->
              incr runs;
              let plan = Engine.Failure_plan.crash_at_step ~site ~step ~mode in
              let r = Engine.Runtime.run (Engine.Runtime.config ~plan ~seed:!runs rb) in
              if r.Engine.Runtime.blocked_operational > 0 then incr blocked;
              if not r.Engine.Runtime.consistent then incr inconsistent)
            modes)
        [ 0; 1; 2; 3 ])
    (List.init n (fun i -> i + 1));
  (!runs, !blocked, !inconsistent)

let e8_blocking_census () =
  section "E8" "Single-failure census: 2PC blocks, 3PC never does (paper's core claim)";
  Fmt.pr "%-22s %6s %14s %14s@." "protocol" "runs" "blocked runs" "inconsistent";
  let rows =
    List.map
      (fun (label, p) ->
        let rb = Engine.Rulebook.compile p in
        let runs, blocked, inconsistent = crash_census rb ~n:3 in
        Fmt.pr "%-22s %6d %14d %14d@." label runs blocked inconsistent;
        (label, runs, blocked, inconsistent))
      [
        ("central-2pc", Core.Catalog.central_2pc 3);
        ("decentralized-2pc", Core.Catalog.decentralized_2pc 3);
        ("central-3pc", Core.Catalog.central_3pc 3);
        ("decentralized-3pc", Core.Catalog.decentralized_3pc 3);
      ]
  in
  List.iter
    (fun (label, _, blocked, inconsistent) ->
      check (Fmt.str "E8 %s never inconsistent" label) (inconsistent = 0);
      if String.length label >= 3 && String.sub label (String.length label - 3) 3 = "3pc" then
        check (Fmt.str "E8 %s never blocks" label) (blocked = 0)
      else check (Fmt.str "E8 %s blocks sometimes" label) (blocked > 0))
    rows

let e9_message_complexity () =
  section "E9" "Message and latency cost per commit, failure-free sweep";
  Fmt.pr "%-4s %14s %14s %14s %14s@." "n" "central-2pc" "central-3pc" "dec-2pc" "dec-3pc";
  let results =
    List.map
      (fun n ->
        let run p =
          let rb = Engine.Rulebook.compile p in
          let r = Engine.Runtime.run (Engine.Runtime.config rb) in
          (r.Engine.Runtime.messages_sent, r.Engine.Runtime.duration)
        in
        let c2 = run (Core.Catalog.central_2pc n)
        and c3 = run (Core.Catalog.central_3pc n)
        and d2 = run (Core.Catalog.decentralized_2pc n)
        and d3 = run (Core.Catalog.decentralized_3pc n) in
        Fmt.pr "%-4d %8d msgs %8d msgs %8d msgs %8d msgs@." n (fst c2) (fst c3) (fst d2) (fst d3);
        (n, c2, c3, d2, d3))
      [ 2; 3; 4; 5; 6 ]
  in
  (* shape checks: central 2pc = 3(n-1), central 3pc = 5(n-1);
     decentralized sends n(n-1)-ish per round (no self messages on the
     wire... the runtime sends self-messages too: n^2 per round) *)
  List.iter
    (fun (n, (m2, _), (m3, _), (d2, _), (d3, _)) ->
      check (Fmt.str "E9 n=%d central 2pc = 3(n-1) messages" n) (m2 = 3 * (n - 1));
      check (Fmt.str "E9 n=%d central 3pc = 5(n-1) messages" n) (m3 = 5 * (n - 1));
      check (Fmt.str "E9 n=%d dec 2pc = n^2 messages (one interchange)" n) (d2 = n * n);
      check (Fmt.str "E9 n=%d dec 3pc = 2n^2 messages (one extra interchange)" n) (d3 = 2 * n * n))
    results;
  (* latency: one extra phase *)
  let _, (_, t2), (_, t3), _, _ = List.nth results 1 in
  Fmt.pr "central latency n=3: 2pc %.2f vs 3pc %.2f@." t2 t3;
  check "E9 3pc latency exceeds 2pc (extra phase)" (t3 > t2);
  let cost (m, t) = J.Obj [ ("messages", J.Int m); ("duration", J.Float t) ] in
  record_result "E9"
    (J.List
       (List.map
          (fun (n, c2, c3, d2, d3) ->
            J.Obj
              [
                ("n", J.Int n);
                ("central_2pc", cost c2);
                ("central_3pc", cost c3);
                ("decentralized_2pc", cost d2);
                ("decentralized_3pc", cost d3);
              ])
          results))

let e10_resilience_cascade () =
  section "E10" "Resilience: cascading failures down to one survivor (corollary)";
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 4) in
  let scenarios =
    [
      ( "coordinator dies pre-decision",
        Engine.Failure_plan.make
          ~step_crashes:[ { Engine.Failure_plan.site = 1; step = 1; mode = Engine.Failure_plan.After_logging 0 } ]
          () );
      ( "coordinator dies, backup dies mid-move",
        Engine.Failure_plan.make
          ~step_crashes:[ { Engine.Failure_plan.site = 1; step = 1; mode = Engine.Failure_plan.After_logging 0 } ]
          ~move_crashes:[ (2, 1) ] () );
      ( "coordinator, then two backups die",
        Engine.Failure_plan.make
          ~step_crashes:[ { Engine.Failure_plan.site = 1; step = 1; mode = Engine.Failure_plan.After_logging 0 } ]
          ~move_crashes:[ (2, 1) ] ~decide_crashes:[ (3, 0) ] () );
      ( "commit-side cascade",
        Engine.Failure_plan.make
          ~step_crashes:[ { Engine.Failure_plan.site = 1; step = 2; mode = Engine.Failure_plan.After_logging 1 } ]
          ~decide_crashes:[ (2, 1) ] () );
    ]
  in
  List.iter
    (fun (label, plan) ->
      let r = Engine.Runtime.run (Engine.Runtime.config ~plan rb) in
      Fmt.pr "--- %s ---@.%a@." label Engine.Runtime.pp_result r;
      check (Fmt.str "E10 %s: consistent" label) r.Engine.Runtime.consistent;
      check
        (Fmt.str "E10 %s: survivors all decided" label)
        r.Engine.Runtime.all_operational_decided)
    scenarios

let e11_recovery_matrix () =
  section "E11" "Recovery: every crash point, with recovery before the end";
  let rb3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let rb2 = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  let run_all rb label =
    let failures = ref 0 and runs = ref 0 in
    List.iter
      (fun site ->
        List.iter
          (fun step ->
            List.iter
              (fun mode ->
                incr runs;
                let plan =
                  Engine.Failure_plan.make
                    ~step_crashes:[ { Engine.Failure_plan.site = site; step; mode } ]
                    ~recoveries:[ (site, 60.0) ] ()
                in
                let r = Engine.Runtime.run (Engine.Runtime.config ~plan ~seed:!runs rb) in
                let undecided =
                  List.exists (fun (s : Engine.Runtime.site_report) -> s.outcome = None) r.Engine.Runtime.reports
                in
                if (not r.Engine.Runtime.consistent) || undecided then incr failures)
              [ Engine.Failure_plan.Before_transition; Engine.Failure_plan.After_logging 0;
                Engine.Failure_plan.After_transition ])
          [ 0; 1; 2; 3 ])
      [ 1; 2; 3 ];
    Fmt.pr "%s: %d crash+recovery scenarios, %d unresolved/inconsistent@." label !runs !failures;
    !failures
  in
  check "E11 3pc: every site resolved after recovery" (run_all rb3 "central-3pc" = 0);
  check "E11 2pc: every site resolved after recovery" (run_all rb2 "central-2pc" = 0)

let e12_kv_ablation () =
  section "E12" "End-to-end cost of nonblocking: bank workload ablation";
  let accounts = 32 and initial_balance = 100 in
  let expected_total = Kv.Workload.bank_total ~accounts ~initial_balance in
  let regimes =
    [
      ("no failures", [], []);
      ("1 crash + recovery", [ (2, 60.0) ], [ (2, 220.0) ]);
      ("1 crash, no recovery", [ (2, 60.0) ], []);
      ("2 crashes + recoveries", [ (2, 60.0); (3, 120.0) ], [ (2, 200.0); (3, 260.0) ]);
    ]
  in
  Fmt.pr "%-24s %-6s %9s %8s %8s %10s %9s %9s %8s@." "regime" "proto" "committed" "aborted"
    "pending" "thruput" "latency" "blocked" "msgs";
  let rows = ref [] in
  List.iter
    (fun (regime, crashes, recoveries) ->
      List.iter
        (fun (pl, protocol) ->
          let results =
            List.map
              (fun seed ->
                let rng = Sim.Rng.create ~seed in
                let wl = Kv.Workload.bank rng ~n_txns:250 ~accounts ~arrival_rate:1.2 in
                let cfg =
                  Kv.Db.config ~n_sites:4 ~protocol ~seed ~crashes ~recoveries
                    ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance)
                    ()
                in
                Kv.Db.run cfg wl)
              [ 1; 2; 3; 4; 5 ]
          in
          let avg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. 5.0 in
          let avi f = List.fold_left (fun a r -> a + f r) 0 results / 5 in
          Fmt.pr "%-24s %-6s %9d %8d %8d %10.4f %9.2f %9.1f %8d@." regime pl
            (avi (fun r -> r.Kv.Db.committed))
            (avi (fun r -> r.Kv.Db.aborted))
            (avi (fun r -> r.Kv.Db.pending))
            (avg (fun r -> r.Kv.Db.throughput))
            (avg (fun r -> Option.value ~default:0.0 r.Kv.Db.mean_latency))
            (avg (fun r -> r.Kv.Db.blocked_time))
            (avi (fun r -> r.Kv.Db.messages_sent));
          rows :=
            ( Fmt.str "%s/%s" regime pl,
              J.Obj
                [
                  ("committed", J.Int (avi (fun r -> r.Kv.Db.committed)));
                  ("aborted", J.Int (avi (fun r -> r.Kv.Db.aborted)));
                  ("pending", J.Int (avi (fun r -> r.Kv.Db.pending)));
                  ("throughput", J.Float (avg (fun r -> r.Kv.Db.throughput)));
                  ( "mean_latency",
                    J.Float (avg (fun r -> Option.value ~default:0.0 r.Kv.Db.mean_latency)) );
                  ("blocked_time", J.Float (avg (fun r -> r.Kv.Db.blocked_time)));
                  ("messages_sent", J.Int (avi (fun r -> r.Kv.Db.messages_sent)));
                  (* full metrics of the seed-1 run: counters, gauges and
                     the commit-latency / phase-split histograms with
                     p50/p90/p99 *)
                  ("metrics", (List.hd results).Kv.Db.metrics_json);
                ] )
            :: !rows;
          List.iter
            (fun r ->
              check (Fmt.str "E12 %s/%s atomic" regime pl) r.Kv.Db.atomicity_ok;
              if recoveries <> [] || crashes = [] then
                check
                  (Fmt.str "E12 %s/%s bank invariant" regime pl)
                  (r.Kv.Db.storage_totals = expected_total))
            results)
        [ ("2pc", Kv.Node.Two_phase); ("3pc", Kv.Node.Three_phase) ])
    regimes;
  record_result "E12" (J.Obj (List.rev !rows))

let e13_partition_ablation () =
  section "E13"
    "Ablation: violating the reliable-detector assumption (network partition)";
  Fmt.pr
    "The paper assumes the network never fails and reports site failures@.\
     reliably.  This ablation partitions site 3 away from {1,2} after the@.\
     votes are sent but before the precommit goes out, so each side@.\
     falsely suspects the other:@.@.";
  let rb3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let rb2 = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  let r3 =
    Engine.Partition_ablation.run ~rulebook:rb3 ~from_t:1.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Fmt.pr "--- central 3PC under partition ---@.%a@.@." Engine.Runtime.pp_result r3;
  check "E13 3PC violates atomicity under partition (split brain — the known limit)"
    (not r3.Engine.Runtime.consistent);
  let r2 =
    Engine.Partition_ablation.run ~rulebook:rb2 ~from_t:1.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Fmt.pr "--- central 2PC under partition ---@.%a@.@." Engine.Runtime.pp_result r2;
  check "E13 2PC stays consistent under partition (it blocks instead)"
    r2.Engine.Runtime.consistent;
  record_result "E13"
    (J.Obj
       [
         ( "central_3pc",
           J.Obj
             [
               ("consistent", J.Bool r3.Engine.Runtime.consistent);
               ("metrics", r3.Engine.Runtime.metrics_json);
             ] );
         ( "central_2pc",
           J.Obj
             [
               ("consistent", J.Bool r2.Engine.Runtime.consistent);
               ("metrics", r2.Engine.Runtime.metrics_json);
             ] );
       ]);
  Fmt.pr
    "Safety under partitions requires quorums (Skeen's later quorum-based@.\
     commit work); within this paper's model the assumption is essential.@."

let e14_quorum_termination () =
  section "E14"
    "Extension: quorum-based termination (safety under partitions, at a liveness price)";
  let rb3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let q = Engine.Runtime.majority 3 in
  (* the E13 partition, now under the quorum rule *)
  let rq =
    Engine.Runtime.run
      (Engine.Runtime.config ~partition:(1.5, 200.0, [ [ 1; 2 ]; [ 3 ] ])
         ~termination:(Engine.Runtime.Quorum q) rb3)
  in
  Fmt.pr "--- E13's partition, quorum rule ---@.%a@.@." Engine.Runtime.pp_result rq;
  check "E14 quorum termination stays consistent under the E13 partition"
    rq.Engine.Runtime.consistent;
  check "E14 everyone converges after healing"
    (List.for_all (fun (s : Engine.Runtime.site_report) -> s.outcome <> None)
       rq.Engine.Runtime.reports);
  record_result "E14"
    (J.Obj
       [
         ("consistent", J.Bool rq.Engine.Runtime.consistent);
         ("metrics", rq.Engine.Runtime.metrics_json);
       ]);
  (* the liveness price: a lone survivor blocks under the quorum rule and
     decides under Skeen's rule *)
  let plan =
    Engine.Failure_plan.make
      ~step_crashes:
        [
          { Engine.Failure_plan.site = 1; step = 1; mode = Engine.Failure_plan.After_logging 0 };
          { Engine.Failure_plan.site = 2; step = 0; mode = Engine.Failure_plan.After_transition };
        ]
      ()
  in
  let r_skeen = Engine.Runtime.run (Engine.Runtime.config ~plan rb3) in
  let r_quorum =
    Engine.Runtime.run (Engine.Runtime.config ~plan ~termination:(Engine.Runtime.Quorum q) rb3)
  in
  Fmt.pr "n-1 failures, lone survivor: Skeen rule blocked=%d, quorum rule blocked=%d@."
    r_skeen.Engine.Runtime.blocked_operational r_quorum.Engine.Runtime.blocked_operational;
  check "E14 Skeen rule: lone survivor decides" (r_skeen.Engine.Runtime.blocked_operational = 0);
  check "E14 quorum rule: lone survivor blocks" (r_quorum.Engine.Runtime.blocked_operational = 1);
  check "E14 both consistent"
    (r_skeen.Engine.Runtime.consistent && r_quorum.Engine.Runtime.consistent)

let e15_presumption_ablation () =
  section "E15" "Extension: commit presumptions and the read-only optimization (2PC engineering)";
  let run ?(protocol = Kv.Node.Two_phase) ?(durable_wal = false) ~presumption ~read_only_opt
      ~write_ratio seed =
    let rng = Sim.Rng.create ~seed in
    let spec =
      {
        Kv.Workload.default_spec with
        Kv.Workload.n_txns = 150;
        keys = 48;
        ops_per_txn = 3;
        write_ratio;
        arrival_rate = 0.8;
      }
    in
    let wl = Kv.Workload.mixed rng spec in
    let cfg = Kv.Db.config ~n_sites:4 ~protocol ~durable_wal ~presumption ~read_only_opt ~seed () in
    Kv.Db.run cfg wl
  in
  Fmt.pr "%-18s %-10s %12s %12s %10s@." "variant" "writes" "msgs" "committed" "aborted";
  let rows =
    List.concat_map
      (fun write_ratio ->
        List.map
          (fun (label, presumption, ro) ->
            let r = run ~presumption ~read_only_opt:ro ~write_ratio 9 in
            Fmt.pr "%-18s %-10.1f %12d %12d %10d@." label write_ratio r.Kv.Db.messages_sent
              r.Kv.Db.committed r.Kv.Db.aborted;
            ((label, write_ratio), r))
          [
            ("standard", Kv.Node.No_presumption, false);
            ("presume-abort", Kv.Node.Presume_abort, false);
            ("presume-commit", Kv.Node.Presume_commit, false);
            ("pc + read-only", Kv.Node.Presume_commit, true);
          ])
      [ 1.0; 0.3 ]
  in
  let msgs label wr = (List.assoc (label, wr) rows).Kv.Db.messages_sent in
  check "E15 presume-commit saves messages on commit-heavy load"
    (msgs "presume-commit" 1.0 < msgs "standard" 1.0);
  check "E15 read-only optimization saves more on read-heavy load"
    (msgs "pc + read-only" 0.3 < msgs "presume-commit" 0.3);
  List.iter
    (fun ((label, wr), r) ->
      check (Fmt.str "E15 %s (w=%.1f) atomic" label wr) r.Kv.Db.atomicity_ok)
    rows;
  (* beyond 2PC: the same levers on the nonblocking 3PC through the
     durable WAL, where the read-only optimization's skipped syncs show
     up as a forces-per-commit drop, not just a message saving *)
  Fmt.pr "@.3PC + durable WAL:@.";
  Fmt.pr "%-18s %-10s %12s %12s %10s %8s@." "variant" "writes" "msgs" "committed" "forces"
    "f/commit";
  let rows3 =
    List.concat_map
      (fun write_ratio ->
        List.map
          (fun (label, presumption, ro) ->
            let r =
              run ~protocol:Kv.Node.Three_phase ~durable_wal:true ~presumption ~read_only_opt:ro
                ~write_ratio 9
            in
            Fmt.pr "%-18s %-10.1f %12d %12d %10d %8.2f@." label write_ratio r.Kv.Db.messages_sent
              r.Kv.Db.committed r.Kv.Db.wal_forces r.Kv.Db.forces_per_commit;
            ((label, write_ratio), r))
          [
            ("standard", Kv.Node.No_presumption, false);
            ("presume-commit", Kv.Node.Presume_commit, false);
            ("pc + read-only", Kv.Node.Presume_commit, true);
          ])
      [ 1.0; 0.3 ]
  in
  let r3 label wr = List.assoc (label, wr) rows3 in
  check "E15 3PC presume-commit saves messages on commit-heavy load"
    ((r3 "presume-commit" 1.0).Kv.Db.messages_sent < (r3 "standard" 1.0).Kv.Db.messages_sent);
  check "E15 3PC read-only optimization saves forces on read-heavy load"
    ((r3 "pc + read-only" 0.3).Kv.Db.wal_forces < (r3 "presume-commit" 0.3).Kv.Db.wal_forces);
  check "E15 3PC read-only optimization lowers forces per commit"
    ((r3 "pc + read-only" 0.3).Kv.Db.forces_per_commit
    < (r3 "presume-commit" 0.3).Kv.Db.forces_per_commit);
  List.iter
    (fun ((label, wr), r) ->
      check (Fmt.str "E15 3PC %s (w=%.1f) atomic" label wr) r.Kv.Db.atomicity_ok)
    rows3

let e16_model_checking () =
  section "E16"
    "Extension: exhaustive model checking with failures (the graph the paper avoids building)";
  Fmt.pr "%-22s %3s %3s %10s %13s %9s@." "protocol" "n" "k" "states" "inconsistent" "blocked";
  List.iter
    (fun (label, n, k, expect_nonblocking) ->
      let rb = Engine.Rulebook.compile ((Core.Catalog.find label).Core.Catalog.build n) in
      let r = Engine.Model_check.run { Engine.Model_check.rulebook = rb; max_crashes = k; limit = 4_000_000; rule = `Skeen } in
      Fmt.pr "%-22s %3d %3d %10d %13d %9d@." label n k r.Engine.Model_check.explored
        (List.length r.Engine.Model_check.inconsistent)
        (List.length r.Engine.Model_check.blocked_terminals);
      check (Fmt.str "E16 %s n=%d k=%d safe" label n k) r.Engine.Model_check.safe;
      check
        (Fmt.str "E16 %s n=%d k=%d %s" label n k
           (if expect_nonblocking then "nonblocking" else "has blocked terminals"))
        (r.Engine.Model_check.nonblocking = expect_nonblocking))
    [
      ("central-2pc", 3, 1, false);
      ("central-2pc", 3, 2, false);
      ("central-3pc", 3, 1, true);
      ("central-3pc", 3, 2, true);
      ("decentralized-2pc", 3, 1, false);
      ("decentralized-3pc", 3, 2, true);
      (* the corollary in full: cascading failures down to one survivor *)
      ("central-3pc", 4, 3, true);
    ];
  Fmt.pr "@.Under the quorum termination rule (safety only — blocking is the design):@.";
  Fmt.pr "%-22s %3s %3s %10s %13s %9s@." "protocol" "n" "k" "states" "inconsistent" "blocked";
  List.iter
    (fun (label, n, k) ->
      let rb = Engine.Rulebook.compile ((Core.Catalog.find label).Core.Catalog.build n) in
      let r =
        Engine.Model_check.run
          { Engine.Model_check.rulebook = rb; max_crashes = k; limit = 4_000_000; rule = `Quorum ((n / 2) + 1) }
      in
      Fmt.pr "%-22s %3d %3d %10d %13d %9d@." label n k r.Engine.Model_check.explored
        (List.length r.Engine.Model_check.inconsistent)
        (List.length r.Engine.Model_check.blocked_terminals);
      check (Fmt.str "E16 quorum %s n=%d k=%d safe" label n k) r.Engine.Model_check.safe)
    [ ("central-3pc", 3, 1); ("central-3pc", 3, 2); ("central-2pc", 3, 2) ];
  Fmt.pr
    "@.Every interleaving — including partially completed transitions, partial@.\
     backup broadcasts and cascading backup failures — is covered.  The checker@.\
     found three real bugs in earlier versions: a participant's FSA consuming a@.\
     stale prepare after termination began; an unprepared-quorum abort that is@.\
     unsound without a buffer phase; and a stale Move_to from a deposed backup@.\
     re-promoting a participant (fixed with election epochs = backup ranks).@.\
     All fixes are in the runtime and the model, regression-guarded here.@."

let e17_db_partition () =
  section "E17" "Extension: the database through a partition — Skeen rule vs quorum rule";
  let n_sites = 3 in
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 3) (List.init 100 Kv.Workload.key_name) in
  let wl = [ (1.0, { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, -5); Kv.Txn.Add (k2, 5) ] }) ] in
  (* open the window after the votes are sent, before the coordinator
     sends the minority's precommit (partitions drop at send time) *)
  let partitions = [ (2.8, 200.0, [ [ 1; 2 ]; [ 3 ] ]) ] in
  let run termination =
    Kv.Db.run
      (Kv.Db.config ~n_sites ~protocol:Kv.Node.Three_phase ~termination ~seed:3 ~partitions
         ~initial_data:[ (k1, 100); (k2, 100) ] ())
      wl
  in
  let skeen = run Kv.Node.T_skeen in
  let quorum = run (Kv.Node.T_quorum 2) in
  Fmt.pr "--- Skeen rule ---@.%a@.@." Kv.Db.pp_result skeen;
  Fmt.pr "--- quorum rule ---@.%a@.@." Kv.Db.pp_result quorum;
  check "E17 Skeen rule split-brains on this schedule" (not skeen.Kv.Db.atomicity_ok);
  check "E17 quorum rule stays atomic" quorum.Kv.Db.atomicity_ok;
  check "E17 quorum rule converges after healing" (quorum.Kv.Db.pending = 0);
  check "E17 quorum conserves money" (quorum.Kv.Db.storage_totals = 200);
  record_result "E17"
    (J.Obj
       [
         ( "skeen",
           J.Obj
             [
               ("atomicity_ok", J.Bool skeen.Kv.Db.atomicity_ok);
               ("metrics", skeen.Kv.Db.metrics_json);
             ] );
         ( "quorum",
           J.Obj
             [
               ("atomicity_ok", J.Bool quorum.Kv.Db.atomicity_ok);
               ("metrics", quorum.Kv.Db.metrics_json);
             ] );
       ])

let run_all () =
  e1_fsa_figures ();
  e2_reachable_graph ();
  e3_concurrency_sets ();
  e4_blocking_2pc ();
  e5_buffer_synthesis ();
  e6_3pc_nonblocking ();
  e7_decision_rule ();
  e8_blocking_census ();
  e9_message_complexity ();
  e10_resilience_cascade ();
  e11_recovery_matrix ();
  e12_kv_ablation ();
  e13_partition_ablation ();
  e14_quorum_termination ();
  e15_presumption_ablation ();
  e16_model_checking ();
  e17_db_partition ();
  Fmt.pr "@.==== experiment harness: %s ====@." (if !all_pass then "ALL PASS" else "FAILURES");
  !all_pass
