(** Wall-clock benchmark of the state-space engines: times
    [Core.Reachability.build] and [Engine.Model_check.run] over the
    catalog (central/decentralized 2PC and 3PC, n in 2..5, k in 0..2)
    and writes states/sec, peak resident states and wall time to
    [BENCH_statespace.json], so every future PR has a perf trajectory to
    beat.  A few small configurations are also run through the
    string-keyed reference engine ([Engine.Model_check_ref]) to report
    the interning speedup.

    [--smoke] instead runs a seconds-long configuration sweep that
    cross-checks the interned engine's [explored]/[safe]/[nonblocking]
    against the reference on every catalog protocol and exits non-zero
    on any mismatch (wired to the [@bench-smoke] dune alias). *)

let protocols =
  [
    ("central-2pc", Core.Catalog.central_2pc);
    ("decentralized-2pc", Core.Catalog.decentralized_2pc);
    ("central-3pc", Core.Catalog.central_3pc);
    ("decentralized-3pc", Core.Catalog.decentralized_3pc);
  ]

let ns = [ 2; 3; 4; 5 ]
let ks = [ 0; 1; 2 ]

(* Caps keep the full bench to a couple of minutes: a configuration that
   hits its cap is reported with ["limit_exceeded": true] rather than
   skipped silently. *)
let reach_limit = 2_000_000
let mc_limit = 1_000_000

let time = Helpers_bench.time
let rate = Helpers_bench.rate

(* ---------------- full bench ---------------- *)

let bench_reachability () =
  List.concat_map
    (fun (label, build) ->
      List.map
        (fun n ->
          let p = build n in
          Fmt.epr "reachability %s n=%d...@." label n;
          let result, wall = time (fun () ->
              try `Graph (Core.Reachability.build ~limit:reach_limit p)
              with Core.Reachability.Too_large _ -> `Too_large)
          in
          let states, edges, exceeded =
            match result with
            | `Graph g -> (Core.Reachability.n_nodes g, Core.Reachability.n_edges g, false)
            | `Too_large -> (reach_limit, 0, true)
          in
          Sim.Json.Obj
            [
              ("protocol", Sim.Json.Str label);
              ("n", Sim.Json.Int n);
              ("states", Sim.Json.Int states);
              ("edges", Sim.Json.Int edges);
              ("wall_s", Sim.Json.Float wall);
              ("states_per_sec", Sim.Json.Float (rate states wall));
              ("limit_exceeded", Sim.Json.Bool exceeded);
            ])
        ns)
    protocols

let mc_config p k =
  { Engine.Model_check.rulebook = Engine.Rulebook.compile p; max_crashes = k;
    limit = mc_limit; rule = `Skeen }

let bench_model_check () =
  List.concat_map
    (fun (label, build) ->
      List.concat_map
        (fun n ->
          let p = build n in
          List.map
            (fun k ->
              Fmt.epr "model_check %s n=%d k=%d...@." label n k;
              let result, wall =
                time (fun () ->
                    try `Report (Engine.Model_check.run (mc_config p k))
                    with Failure _ -> `Too_large)
              in
              let fields =
                match result with
                | `Report (r : Engine.Model_check.report) ->
                    [
                      ("explored", Sim.Json.Int r.Engine.Model_check.explored);
                      ("safe", Sim.Json.Bool r.Engine.Model_check.safe);
                      ("nonblocking", Sim.Json.Bool r.Engine.Model_check.nonblocking);
                      (* BFS retains every state in the seen/keys tables,
                         so peak residency = explored *)
                      ("peak_resident_states", Sim.Json.Int r.Engine.Model_check.explored);
                      ("states_per_sec", Sim.Json.Float (rate r.Engine.Model_check.explored wall));
                      ("limit_exceeded", Sim.Json.Bool false);
                    ]
                | `Too_large ->
                    [
                      ("explored", Sim.Json.Int mc_limit);
                      ("peak_resident_states", Sim.Json.Int mc_limit);
                      ("states_per_sec", Sim.Json.Float (rate mc_limit wall));
                      ("limit_exceeded", Sim.Json.Bool true);
                    ]
              in
              Sim.Json.Obj
                ([
                   ("protocol", Sim.Json.Str label);
                   ("n", Sim.Json.Int n);
                   ("k", Sim.Json.Int k);
                   ("rule", Sim.Json.Str "skeen");
                   ("wall_s", Sim.Json.Float wall);
                 ]
                @ fields))
            ks)
        ns)
    protocols

(* The reference engine is orders of magnitude slower, so the speedup
   section sticks to small configurations (including the acceptance one:
   central 3PC, n=3, k=2). *)
let speedup_configs =
  [
    ("central-2pc", Core.Catalog.central_2pc, 3, 2);
    ("central-3pc", Core.Catalog.central_3pc, 3, 1);
    ("central-3pc", Core.Catalog.central_3pc, 3, 2);
    ("decentralized-3pc", Core.Catalog.decentralized_3pc, 3, 1);
  ]

let bench_speedup () =
  List.map
    (fun (label, build, n, k) ->
      Fmt.epr "speedup %s n=%d k=%d...@." label n k;
      let cfg = mc_config (build n) k in
      (* warm once so allocator state is comparable; report each engine's
         best of three runs — these are millisecond-scale measurements,
         so a single scheduler hiccup would otherwise dominate *)
      ignore (Engine.Model_check.run cfg);
      let best f =
        let runs = List.init 3 (fun _ -> time f) in
        List.fold_left
          (fun (r0, t0) (r, t) -> if t < t0 then (r, t) else (r0, t0))
          (List.hd runs) (List.tl runs)
      in
      let a, tn = best (fun () -> Engine.Model_check.run cfg) in
      let b, tr = best (fun () -> Engine.Model_check_ref.run cfg) in
      assert (a.Engine.Model_check.explored = b.Engine.Model_check.explored);
      Sim.Json.Obj
        [
          ("protocol", Sim.Json.Str label);
          ("n", Sim.Json.Int n);
          ("k", Sim.Json.Int k);
          ("explored", Sim.Json.Int a.Engine.Model_check.explored);
          ("interned_wall_s", Sim.Json.Float tn);
          ("reference_wall_s", Sim.Json.Float tr);
          ("interned_states_per_sec", Sim.Json.Float (rate a.Engine.Model_check.explored tn));
          ("reference_states_per_sec", Sim.Json.Float (rate b.Engine.Model_check.explored tr));
          ("speedup", Sim.Json.Float (tr /. tn));
        ])
    speedup_configs

let full () =
  let report = Sim.Report.create ~bench_name:"statespace" () in
  Sim.Report.add report "reachability" (Sim.Json.List (bench_reachability ()));
  Sim.Report.add report "model_check" (Sim.Json.List (bench_model_check ()));
  Sim.Report.add report "speedup_vs_reference" (Sim.Json.List (bench_speedup ()));
  let file = "BENCH_statespace.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

(* ---------------- smoke mode ---------------- *)

(* Every catalog protocol (including 1PC) at n=2..3, k=0..1, both
   termination rules: a few seconds of checking that the interned engine
   and the reference produce identical reports. *)
let smoke () =
  let failures = ref 0 in
  List.iter
    (fun (e : Core.Catalog.entry) ->
      List.iter
        (fun n ->
          List.iter
            (fun k ->
              List.iter
                (fun rule ->
                  let cfg =
                    { Engine.Model_check.rulebook = Engine.Rulebook.compile (e.Core.Catalog.build n);
                      max_crashes = k; limit = mc_limit; rule }
                  in
                  let a = Engine.Model_check.run cfg in
                  let b = Engine.Model_check_ref.run cfg in
                  let ok =
                    a.Engine.Model_check.explored = b.Engine.Model_check.explored
                    && a.Engine.Model_check.safe = b.Engine.Model_check.safe
                    && a.Engine.Model_check.nonblocking = b.Engine.Model_check.nonblocking
                    && (a.Engine.Model_check.counterexample <> None)
                       = (b.Engine.Model_check.counterexample <> None)
                  in
                  if not ok then begin
                    incr failures;
                    Fmt.epr "MISMATCH %s n=%d k=%d %s: interned %d/%b/%b vs reference %d/%b/%b@."
                      e.Core.Catalog.label n k
                      (match rule with `Skeen -> "skeen" | `Quorum q -> Fmt.str "quorum-%d" q)
                      a.Engine.Model_check.explored a.Engine.Model_check.safe
                      a.Engine.Model_check.nonblocking b.Engine.Model_check.explored
                      b.Engine.Model_check.safe b.Engine.Model_check.nonblocking
                  end)
                [ `Skeen; `Quorum ((n / 2) + 1) ])
            [ 0; 1 ])
        [ 2; 3 ])
    Core.Catalog.all;
  if !failures > 0 then begin
    Fmt.epr "bench-smoke: %d mismatches@." !failures;
    exit 1
  end;
  Fmt.pr "bench-smoke: interned engine agrees with reference on all catalog configs@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
