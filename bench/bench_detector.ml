(** Failure-detector benchmark: what timeout-based suspicion costs and
    what epoch fencing buys.  Writes [BENCH_detector.json] with four
    sections:

    - [timeout_sweep]: termination latency and false-suspicion rate as a
      function of the suspicion timeout, under a fixed latency-fault
      profile (spikes, stalls, heartbeat loss).  Aggressive timeouts
      detect real crashes faster but suspect falsely more often; timeouts
      below the network's worst-case jitter let both survivors terminate
      independently — the unsafe region the paper's reliable-detector
      assumption rules out.
    - [detector_sweeps]: 500-seed chaos sweeps with detector faults armed
      and fencing on — atomicity and split-brain must stay clean (the
      experimental evidence for epoch fencing); progress violations are
      tolerated, a deposed backup that stands down may leave the run
      undecided.
    - [suspicion]: detector metrics from the 500-seed sweep —
      false-suspicion count, crash-to-suspicion latency histogram,
      elections started, directives fenced.
    - [ablations]: the [--no-fencing] ablation on a pinned plan (stalled
      backup wakes with stale authority after a higher-epoch backup
      decided and crashed mid-announcement): atomicity violated without
      fencing, caught, shrunk and replayed through its text form; the
      same plan with fencing on is safe.

    [--smoke] (wired to the [@detector-smoke] dune alias) runs a
    seconds-long fixed corpus asserting the correctness half only. *)

module C = Engine.Chaos
module FP = Engine.Failure_plan
module N = Sim.Nemesis
module KC = Kv.Chaos_db
module M = Sim.Metrics

let time = Helpers_bench.time
let rate = Helpers_bench.rate
let count_for = Helpers_bench.count_for

(* [--workers N] shards the seed sweeps below across N domains via
   Sim.Sweep; results are byte-identical whatever the value. *)
let workers = Helpers_bench.arg_int "--workers" ~default:1 Sys.argv

(* Latency jitter below the default suspicion threshold plus one-sided
   detector starvation (stalls, heartbeat loss): the fault class fencing
   must survive.  Spikes are capped at [suspicion_timeout - heartbeat
   - margin] so a spike alone cannot partition the survivors into
   mutually suspecting halves — that regime is measured separately by
   the timeout sweep. *)
let detector_profile =
  {
    N.default_profile with
    N.p_delay_spike = 0.4;
    spike_extra_min = 1.0;
    spike_extra_max = 3.5;
    p_stall = 0.45;
    p_hb_loss = 0.5;
    detector_window_min = 4.0;
    detector_window_max = 14.0;
  }

let kv_detector_profile =
  {
    KC.default_profile with
    N.p_delay_spike = 0.4;
    spike_extra_min = 1.0;
    spike_extra_max = 3.5;
    p_stall = 0.45;
    p_hb_loss = 0.5;
    detector_window_min = 4.0;
    detector_window_max = 14.0;
  }

(* The fencing ablation, pinned (experiment E19).  Coordinator crashes
   having precommitted site 2 only; site 3 terminates at epoch 2,
   planting its epoch at site 4, decides abort and crashes before
   announcing; the stalled site 2 wakes believing it leads at epoch 1
   and walks site 4 to commit — unless site 4 fences the stale
   directive. *)
let fencing_pinned =
  "step-crash site=1 step=1 mode=after-logging:1; stall site=2 from=4 until=14; decide-crash \
   site=3 sent=0"

let has_atomicity vs = List.exists (fun (v : C.violation) -> v.C.oracle = C.Atomicity) vs
let safety_oracles = [ C.Atomicity; C.Split_brain ]

let safety_clean by =
  List.for_all (fun o -> count_for by o = 0) safety_oracles

(* ---------------- termination latency vs suspicion timeout ---------------- *)

let timeout_row ~seeds suspicion_timeout =
  Fmt.epr "timeout sweep: suspicion=%.1f x%d...@." suspicion_timeout seeds;
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let metrics = M.create () in
  let durations = ref [] in
  let violations = ref [] in
  for seed = 0 to seeds - 1 do
    let o =
      C.run_one ~metrics ~profile:detector_profile ~detector:true ~suspicion_timeout rb ~k:1
        ~seed ()
    in
    if o.C.result.Engine.Runtime.duration > 0.0 then
      durations := o.C.result.Engine.Runtime.duration :: !durations;
    violations := o.C.violations @ !violations
  done;
  let n = List.length !durations in
  let mean = if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 !durations /. float_of_int n in
  let p95 =
    match List.sort compare !durations with
    | [] -> 0.0
    | sorted -> List.nth sorted (min (n - 1) (n * 95 / 100))
  in
  let count o = List.length (List.filter (fun (v : C.violation) -> v.C.oracle = o) !violations) in
  Sim.Json.Obj
    [
      ("suspicion_timeout", Sim.Json.Float suspicion_timeout);
      ("seeds", Sim.Json.Int seeds);
      ("mean_decision_latency_s", Sim.Json.Float mean);
      ("p95_decision_latency_s", Sim.Json.Float p95);
      ("false_suspicions", Sim.Json.Int (M.counter metrics "false_suspicions"));
      ( "false_suspicions_per_run",
        Sim.Json.Float (float_of_int (M.counter metrics "false_suspicions") /. float_of_int seeds)
      );
      ("elections_started", Sim.Json.Int (M.counter metrics "elections_started"));
      ("violations_atomicity", Sim.Json.Int (count C.Atomicity));
      ("violations_split_brain", Sim.Json.Int (count C.Split_brain));
      ("violations_progress", Sim.Json.Int (count C.Progress));
    ]

(* ---------------- fault-on detector sweeps ---------------- *)

let hist_json metrics name =
  match M.summarize metrics name with
  | None -> Sim.Json.Null
  | Some s ->
      Sim.Json.Obj
        [
          ("count", Sim.Json.Int s.M.count);
          ("mean", Sim.Json.Float s.M.mean);
          ("p50", Sim.Json.Float s.M.p50);
          ("p99", Sim.Json.Float s.M.p99);
          ("max", Sim.Json.Float s.M.max);
        ]

let engine_detector_sweep ~seeds =
  Fmt.epr "detector sweep: central-3pc n=3 k=1 x%d...@." seeds;
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let summary, wall =
    time (fun () -> C.sweep ~profile:detector_profile ~detector:true rb ~workers ~k:1 ~seeds ())
  in
  let by = summary.C.violations_by_oracle in
  let m = summary.C.metrics in
  let row =
    Sim.Json.Obj
      [
        ("harness", Sim.Json.Str "protocol");
        ("protocol", Sim.Json.Str "central-3pc");
        ("n", Sim.Json.Int 3);
        ("k", Sim.Json.Int 1);
        ("seeds", Sim.Json.Int seeds);
        ("wall_s", Sim.Json.Float wall);
        ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
        ("violations_atomicity", Sim.Json.Int (count_for by C.Atomicity));
        ("violations_split_brain", Sim.Json.Int (count_for by C.Split_brain));
        ("violations_progress", Sim.Json.Int (count_for by C.Progress));
        ("safety_clean", Sim.Json.Bool (safety_clean by));
      ]
  in
  let suspicion =
    Sim.Json.Obj
      [
        ("false_suspicions", Sim.Json.Int (M.counter m "false_suspicions"));
        ("elections_started", Sim.Json.Int (M.counter m "elections_started"));
        ("epoch_rejected_directives", Sim.Json.Int (M.counter m "epoch_rejected_directives"));
        ("suspicion_latency_s", hist_json m "suspicion_latency");
      ]
  in
  (row, suspicion, safety_clean by)

let kv_detector_sweep ~seeds =
  Fmt.epr "detector sweep: kv central-3pc n=4 k=1 x%d...@." seeds;
  let summary, wall =
    time (fun () ->
        KC.sweep ~profile:kv_detector_profile ~n_sites:4 ~detector:true ~workers ~k:1 ~seeds ())
  in
  let by = summary.KC.violations_by_oracle in
  let safety =
    count_for by KC.Atomicity = 0 && count_for by KC.Split_brain = 0
    && count_for by KC.Conservation = 0
  in
  ( Sim.Json.Obj
      [
        ("harness", Sim.Json.Str "kv");
        ("protocol", Sim.Json.Str "central-3pc");
        ("n", Sim.Json.Int 4);
        ("k", Sim.Json.Int 1);
        ("seeds", Sim.Json.Int seeds);
        ("wall_s", Sim.Json.Float wall);
        ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
        ("violations_atomicity", Sim.Json.Int (count_for by KC.Atomicity));
        ("violations_split_brain", Sim.Json.Int (count_for by KC.Split_brain));
        ("violations_conservation", Sim.Json.Int (count_for by KC.Conservation));
        ("violations_progress", Sim.Json.Int (count_for by KC.Progress));
        ("safety_clean", Sim.Json.Bool safety);
      ],
    safety )

(* ---------------- the fencing ablation ---------------- *)

let rb4 () = Engine.Rulebook.compile (Core.Catalog.central_3pc 4)

let fencing_ablation_row () =
  Fmt.epr "ablation: no-fencing pinned plan...@.";
  let rb = rb4 () in
  let plan = FP.of_string_exn fencing_pinned in
  let _, unfenced = C.run_plan ~detector:true ~fencing:false rb ~plan ~seed:1 () in
  let _, fenced = C.run_plan ~detector:true ~fencing:true rb ~plan ~seed:1 () in
  let minimal, shrink_runs =
    C.shrink ~detector:true ~fencing:false rb ~seed:1 ~oracle:C.Atomicity plan
  in
  let reloaded = FP.of_string_exn (FP.to_string minimal) in
  let _, replay = C.run_plan ~detector:true ~fencing:false rb ~plan:reloaded ~seed:1 () in
  Sim.Json.Obj
    [
      ("ablation", Sim.Json.Str "no-fencing");
      ("plan", Sim.Json.Str fencing_pinned);
      ("caught_without_fencing", Sim.Json.Bool (has_atomicity unfenced));
      ("safe_with_fencing", Sim.Json.Bool (not (has_atomicity fenced)));
      ("shrunk_faults", Sim.Json.Int (FP.fault_count minimal));
      ("shrink_runs", Sim.Json.Int shrink_runs);
      ("shrunk_plan", Sim.Json.Str (FP.to_string minimal));
      ("replays_through_text", Sim.Json.Bool (has_atomicity replay));
    ]

(* ---------------- full bench ---------------- *)

let full () =
  let report = Sim.Report.create ~bench_name:"detector" () in
  Sim.Report.add report "timeout_sweep"
    (Sim.Json.List (List.map (timeout_row ~seeds:150) [ 2.0; 3.0; 5.0; 8.0; 12.0 ]));
  let engine_row, suspicion, _ = engine_detector_sweep ~seeds:500 in
  let kv_row, _ = kv_detector_sweep ~seeds:150 in
  Sim.Report.add report "detector_sweeps" (Sim.Json.List [ engine_row; kv_row ]);
  Sim.Report.add report "suspicion" suspicion;
  Sim.Report.add report "ablations" (Sim.Json.List [ fencing_ablation_row () ]);
  let file = "BENCH_detector.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

(* ---------------- smoke mode ---------------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Fmt.epr "UNEXPECTED %s@." what
  end

let smoke () =
  let rb3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  (* detector-fault sweeps must stay safety-clean under fencing *)
  let s = C.sweep ~profile:detector_profile ~detector:true rb3 ~workers ~k:1 ~seeds:60 () in
  check "engine detector sweep violated safety" (safety_clean s.C.violations_by_oracle);
  check "engine detector sweep suspected nobody falsely"
    (M.counter s.C.metrics "false_suspicions" > 0);
  let skv =
    KC.sweep ~profile:kv_detector_profile ~n_sites:4 ~detector:true ~workers ~k:1 ~seeds:20 ()
  in
  check "kv detector sweep violated safety"
    (count_for skv.KC.violations_by_oracle KC.Atomicity = 0
    && count_for skv.KC.violations_by_oracle KC.Split_brain = 0);
  (* the fencing ablation must be caught, and only the ablation *)
  let rb = rb4 () in
  let plan = FP.of_string_exn fencing_pinned in
  let _, unfenced = C.run_plan ~detector:true ~fencing:false rb ~plan ~seed:1 () in
  check "no-fencing ablation not caught by the atomicity oracle" (has_atomicity unfenced);
  let _, fenced = C.run_plan ~detector:true ~fencing:true rb ~plan ~seed:1 () in
  check "fencing failed to stop the stale backup" (not (has_atomicity fenced));
  let minimal, _ = C.shrink ~detector:true ~fencing:false rb ~seed:1 ~oracle:C.Atomicity plan in
  let _, replay =
    C.run_plan ~detector:true ~fencing:false rb ~plan:(FP.of_string_exn (FP.to_string minimal))
      ~seed:1 ()
  in
  check "shrunk no-fencing plan does not replay through its text form" (has_atomicity replay);
  if !failures > 0 then begin
    Fmt.epr "detector-smoke: %d unexpected result(s)@." !failures;
    exit 1
  end;
  Fmt.pr
    "detector-smoke: fault-on sweeps safety-clean, false suspicions provoked and survived, \
     no-fencing ablation caught and shrunk@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
