(** Group-commit + pipelining benchmark: the step change in commits/sec
    and the proof that none of the latency levers costs correctness.
    Writes [BENCH_commit.json] with three sections:

    - [throughput]: the database harness (n=4, durable WAL, 0.4 s
      simulated sync latency) under a mixed read/write workload at
      several offered loads, one row per lever combination — commits/sec
      in simulated time, p50/p99/mean commit latency, WAL forces, group
      flushes and the forces-per-commit column the levers push down.
    - [headline]: commits/sec of group commit + pipelining relative to
      the levers-off baseline at each offered load.  The bench exits
      non-zero unless the speedup is at least 2x (1.5x in smoke, where
      the shorter run amortizes less warm-up and tail) at every
      saturating load; loads below [gate_from] ride along ungated — a
      near-idle disk leaves group commit nothing to coalesce, so those
      rows chart the latency-vs-load shape rather than the headline.
    - [safety_sweeps]: seed sweeps through the chaos, durability
      (storage faults armed) and failure-detector oracle suites for
      every lever combination, on both the protocol engine and the
      database harness — all oracles must stay clean.

    [--smoke] (wired to the [@commit-smoke] dune alias) runs a
    seconds-long corpus: a reduced throughput grid with the 1.5x gate
    plus 25-seed safety sweeps per combination; exits non-zero on a
    missed gate or any oracle violation, and still writes a smoke-sized
    [BENCH_commit.json] so CI always uploads the evidence.
    [--workers N] shards the sweeps across N domains ({!Sim.Sweep});
    results are byte-identical whatever the value. *)

module C = Engine.Chaos
module KC = Kv.Chaos_db
module KN = Kv.Node
module N = Sim.Nemesis
module R = Engine.Runtime
module J = Sim.Json

let time = Helpers_bench.time
let rate = Helpers_bench.rate
let workers = Helpers_bench.arg_int "--workers" ~default:1 Sys.argv

(* ---------------- the lever grid ---------------- *)

let gc = { Kv.Kv_wal.max_batch = 8; max_wait = 0.05 }
let egc = { Engine.Wal.max_batch = 4; max_wait = 0.05 }

type combo = {
  name : string;
  presumption : KN.presumption;
  read_only_opt : bool;
  group_commit : Kv.Kv_wal.group_commit option;
  pipeline_depth : int;
}

let combo ?(presumption = KN.No_presumption) ?(read_only_opt = false) ?group_commit
    ?(pipeline_depth = 1) name =
  { name; presumption; read_only_opt; group_commit; pipeline_depth }

let baseline = combo "levers-off"
let group_pipeline = combo ~group_commit:gc ~pipeline_depth:8 "group+pipeline"

let all_levers =
  combo ~presumption:KN.Presume_commit ~read_only_opt:true ~group_commit:gc ~pipeline_depth:8
    "group+pipeline+presume-commit+read-only"

let full_combos =
  [
    baseline;
    combo ~group_commit:gc "group-commit";
    combo ~pipeline_depth:8 "pipeline";
    group_pipeline;
    combo ~presumption:KN.Presume_commit ~group_commit:gc ~pipeline_depth:8
      "group+pipeline+presume-commit";
    all_levers;
  ]

let smoke_combos = [ baseline; group_pipeline; all_levers ]

(* ---------------- throughput grid ---------------- *)

let sync_latency = 0.4

let workload ~n_txns ~arrival_rate =
  Kv.Workload.mixed (Sim.Rng.create ~seed:11)
    {
      Kv.Workload.n_txns;
      arrival_rate;
      keys = 512;
      ops_per_txn = 3;
      write_ratio = 0.5;
      zipf_skew = 0.0;
    }

let throughput_run ~n_txns ~arrival_rate (c : combo) =
  let w = workload ~n_txns ~arrival_rate in
  let cfg =
    Kv.Db.config ~n_sites:4 ~durable_wal:true ~sync_latency ~lock_wait_timeout:60.0
      ~presumption:c.presumption ~read_only_opt:c.read_only_opt ?group_commit:c.group_commit
      ~pipeline_depth:c.pipeline_depth ()
  in
  Kv.Db.run cfg w

let commits_per_sec (r : Kv.Db.result) =
  if r.Kv.Db.duration > 0.0 then float_of_int r.Kv.Db.committed /. r.Kv.Db.duration else 0.0

let throughput_row ~n_txns ~arrival_rate (c : combo) (r : Kv.Db.result) =
  let m = r.Kv.Db.run_metrics in
  let pct p = match Sim.Metrics.percentile m "commit_latency" p with Some v -> v | None -> 0.0 in
  J.Obj
    [
      ("combo", J.Str c.name);
      ("offered_load_tps", J.Float arrival_rate);
      ("n_txns", J.Int n_txns);
      ("committed", J.Int r.Kv.Db.committed);
      ("aborted", J.Int r.Kv.Db.aborted);
      ("pending", J.Int r.Kv.Db.pending);
      ("duration_s", J.Float r.Kv.Db.duration);
      ("commits_per_sec", J.Float (commits_per_sec r));
      ("commit_latency_p50_s", J.Float (pct 50.0));
      ("commit_latency_p99_s", J.Float (pct 99.0));
      ( "commit_latency_mean_s",
        J.Float (match r.Kv.Db.mean_latency with Some v -> v | None -> 0.0) );
      ("wal_forces", J.Int r.Kv.Db.wal_forces);
      ("wal_group_flushes", J.Int (Sim.Metrics.counter m "wal_group_flushes"));
      ("forces_per_commit", J.Float r.Kv.Db.forces_per_commit);
      ("messages_sent", J.Int r.Kv.Db.messages_sent);
      ("atomicity_ok", J.Bool r.Kv.Db.atomicity_ok);
    ]

(* ---------------- safety sweeps ---------------- *)

(* loads below this are ungated context rows: a near-idle disk gives
   group commit nothing to coalesce *)
let gate_from = 5.0

let faulty = { N.default_profile with N.p_disk_fault = 0.6 }
let kv_faulty = { KC.default_profile with N.p_disk_fault = 0.6 }

(* every lever combination through the chaos, durability and detector
   suites; [run] returns (violation rows, seeds swept) *)
let safety_rows ~seeds rb =
  let kv name f =
    (name, fun () -> let s = f () in List.length s.KC.violations_by_oracle = 0)
  in
  let eng name f =
    (name, fun () -> let s = f () in List.length s.C.violations_by_oracle = 0)
  in
  let ksweep ?profile ?presumption ?read_only_opt ?group_commit ?sync_latency ?pipeline_depth
      ?detector () =
    KC.sweep ?profile ?presumption ?read_only_opt ?group_commit ?sync_latency ?pipeline_depth
      ?detector ~durable_wal:true ~n_sites:4 ~workers ~k:1 ~seeds ()
  in
  let esweep ?profile ?presumption ?read_only ?group_commit ?sync_latency ?detector () =
    C.sweep ?profile ?presumption ?read_only ?group_commit ?sync_latency ?detector rb ~workers
      ~k:1 ~seeds ()
  in
  [
    kv "kv chaos: presume-abort" (fun () -> ksweep ~presumption:KN.Presume_abort ());
    kv "kv chaos: presume-commit + read-only" (fun () ->
        ksweep ~presumption:KN.Presume_commit ~read_only_opt:true ());
    kv "kv chaos: group-commit + pipelining" (fun () ->
        ksweep ~group_commit:gc ~sync_latency:0.3 ~pipeline_depth:4 ());
    kv "kv chaos: all levers" (fun () ->
        ksweep ~presumption:KN.Presume_commit ~read_only_opt:true ~group_commit:gc
          ~sync_latency:0.3 ~pipeline_depth:4 ());
    kv "kv durability: all levers" (fun () ->
        ksweep ~profile:kv_faulty ~presumption:KN.Presume_commit ~read_only_opt:true
          ~group_commit:gc ~sync_latency:0.3 ~pipeline_depth:4 ());
    kv "kv detector: all levers" (fun () ->
        ksweep ~detector:true ~presumption:KN.Presume_commit ~read_only_opt:true ~group_commit:gc
          ~sync_latency:0.3 ~pipeline_depth:4 ());
    eng "engine chaos: presume-abort" (fun () -> esweep ~presumption:R.Presume_abort ());
    eng "engine chaos: presume-commit" (fun () -> esweep ~presumption:R.Presume_commit ());
    eng "engine chaos: read-only participant" (fun () -> esweep ~read_only:[ 2 ] ());
    eng "engine chaos: group-commit + sync latency" (fun () ->
        esweep ~group_commit:egc ~sync_latency:0.3 ());
    eng "engine chaos: all levers" (fun () ->
        esweep ~presumption:R.Presume_abort ~read_only:[ 2 ] ~group_commit:egc ~sync_latency:0.3
          ());
    eng "engine durability: all levers" (fun () ->
        esweep ~profile:faulty ~presumption:R.Presume_abort ~read_only:[ 2 ] ~group_commit:egc
          ~sync_latency:0.3 ());
    eng "engine detector: all levers" (fun () ->
        esweep ~detector:true ~presumption:R.Presume_abort ~read_only:[ 2 ] ~group_commit:egc
          ~sync_latency:0.3 ());
  ]

(* ---------------- driver ---------------- *)

let run ~n_txns ~loads ~combos ~sweep_seeds ~min_speedup ~file =
  (* throughput grid *)
  let grid =
    List.concat_map
      (fun arrival_rate ->
        List.map
          (fun c ->
            Fmt.epr "throughput: load=%.1f combo=%s...@." arrival_rate c.name;
            (arrival_rate, c, throughput_run ~n_txns ~arrival_rate c))
          combos)
      loads
  in
  let speedups =
    List.map
      (fun load ->
        let at name =
          List.find_map
            (fun (l, c, r) -> if l = load && c.name = name then Some r else None)
            grid
        in
        match (at baseline.name, at group_pipeline.name) with
        | Some b, Some g ->
            let s =
              if commits_per_sec b > 0.0 then commits_per_sec g /. commits_per_sec b else 0.0
            in
            (load, s)
        | _ -> (load, 0.0))
      loads
  in
  (* safety sweeps *)
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let sweep_results =
    List.map
      (fun (name, f) ->
        Fmt.epr "sweep: %s (%d seeds)...@." name sweep_seeds;
        let clean, wall = time f in
        (name, clean, wall))
      (safety_rows ~seeds:sweep_seeds rb)
  in
  (* report *)
  let report = Sim.Report.create ~bench_name:"commit" () in
  Sim.Report.add report "config"
    (J.Obj
       [
         ("n_sites", J.Int 4);
         ("sync_latency_s", J.Float sync_latency);
         ("n_txns", J.Int n_txns);
         ("workload", J.Str "mixed keys=512 ops=3 write_ratio=0.5 uniform");
         ("min_speedup_gate", J.Float min_speedup);
         ("sweep_seeds", J.Int sweep_seeds);
       ]);
  Sim.Report.add report "throughput"
    (J.List (List.map (fun (l, c, r) -> throughput_row ~n_txns ~arrival_rate:l c r) grid));
  Sim.Report.add report "headline"
    (J.List
       (List.map
          (fun (load, s) ->
            J.Obj
              [
                ("offered_load_tps", J.Float load);
                ("speedup_group_pipeline_vs_baseline", J.Float s);
                ("gated", J.Bool (load >= gate_from));
              ])
          speedups));
  Sim.Report.add report "safety_sweeps"
    (J.List
       (List.map
          (fun (name, clean, wall) ->
            J.Obj
              [
                ("suite", J.Str name);
                ("seeds", J.Int sweep_seeds);
                ("clean", J.Bool clean);
                ("wall_s", J.Float wall);
                ("seeds_per_sec", J.Float (rate sweep_seeds wall));
              ])
          sweep_results));
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file;
  (* gates *)
  let missed =
    List.filter_map
      (fun (load, s) ->
        if load >= gate_from && s < min_speedup then
          Some (Fmt.str "load %.1f: speedup %.2fx < %.1fx" load s min_speedup)
        else None)
      speedups
  in
  let dirty =
    List.filter_map (fun (name, clean, _) -> if clean then None else Some name) sweep_results
  in
  List.iter (Fmt.epr "HEADLINE MISSED: %s@.") missed;
  List.iter (Fmt.epr "ORACLE VIOLATION: %s@.") dirty;
  List.iter
    (fun (load, s) -> Fmt.pr "load %.1f tps: group+pipeline is %.2fx the baseline@." load s)
    speedups;
  missed = [] && dirty = []

let full () =
  if
    not
      (run ~n_txns:200 ~loads:[ 2.0; 5.0; 20.0 ] ~combos:full_combos ~sweep_seeds:500
         ~min_speedup:2.0 ~file:"BENCH_commit.json")
  then exit 1

let smoke () =
  if
    not
      (run ~n_txns:120 ~loads:[ 5.0; 20.0 ] ~combos:smoke_combos ~sweep_seeds:25
         ~min_speedup:1.5 ~file:"BENCH_commit.json")
  then begin
    Fmt.epr "commit-smoke: headline or safety gate failed@.";
    exit 1
  end;
  Fmt.pr "commit-smoke: speedup gate met, all lever sweeps oracle-clean@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
