(** Durability benchmark: what the simulated-disk WAL costs and what it
    catches.  Writes [BENCH_durability.json] with four sections:

    - [codec]: binary codec + frame throughput (encode/decode round
      trips per second) for both the engine and the database record
      types.
    - [overhead]: chaos-sweep wall-clock with the durable WAL versus the
      PR-3 in-memory log, and with storage faults armed on top.  The
      durable/memory ratio is the headline number (target < 2x).
    - [durability_sweeps]: 500-seed fault-on sweeps (torn + corrupt
      tails on every crash) over both 3PC paradigms and the database
      harness — all four oracles must stay clean, the experimental
      evidence that the paper's force rule makes torn and corrupt tails
      vacuous.
    - [ablations]: the two ways to break the discipline, each caught by
      the durability oracle — the mis-placed force point ([late_force],
      found by sweep and shrunk to a pasteable plan) and the lying fsync
      ([Lost_flush], pinned plans on both harnesses).

    [--smoke] (wired to the [@durability-smoke] dune alias) runs a
    seconds-long fixed corpus asserting the correctness half only: sweeps
    clean, both ablations caught, durable run = in-memory run.  No
    wall-clock assertions — CI machines are noisy. *)

module C = Engine.Chaos
module FP = Engine.Failure_plan
module N = Sim.Nemesis
module KC = Kv.Chaos_db

let time = Helpers_bench.time
let rate = Helpers_bench.rate
let count_for = Helpers_bench.count_for

(* [--workers N] shards the seed sweeps below across N domains via
   Sim.Sweep; results are byte-identical whatever the value. *)
let workers = Helpers_bench.arg_int "--workers" ~default:1 Sys.argv
let faulty_profile = { N.default_profile with N.p_disk_fault = 0.6 }
let kv_faulty_profile = { KC.default_profile with N.p_disk_fault = 0.6 }

let late_force_pinned = "step-crash site=2 step=0 mode=after-logging:1"

let lost_flush_pinned =
  "disk site=2 fault=lost-flush nth=1; step-crash site=2 step=0 mode=after-logging:1"

let kv_lost_flush_schedule =
  [
    N.Disk_fault { site = 3; fault = Sim.Disk.Lost_flush; nth = 0 };
    N.Crash { site = 3; at = 3.0 };
  ]

let has_durability vs = List.exists (fun (v : C.violation) -> v.C.oracle = C.Durability) vs

let kv_has_durability vs =
  List.exists (fun (v : KC.violation) -> v.KC.oracle = KC.Durability) vs

(* ---------------- codec throughput ---------------- *)

let engine_records =
  [
    Engine.Wal.Began { protocol = "central-3pc"; initial = "q" };
    Engine.Wal.Transitioned { to_state = "w"; vote = Some Core.Types.Yes };
    Engine.Wal.Moved { to_state = "p" };
    Engine.Wal.Decided Core.Types.Committed;
  ]

let kv_records =
  [
    Kv.Kv_wal.P_prepared
      {
        txn = 42;
        coordinator = 1;
        participants = [ 1; 2; 3; 4 ];
        writes = [ ("acct-0", 120); ("acct-7", -120) ];
        locks = [ ("acct-0", Kv.Lock_table.Exclusive); ("acct-7", Kv.Lock_table.Exclusive) ];
      };
    Kv.Kv_wal.P_precommitted { txn = 42 };
    Kv.Kv_wal.P_outcome { txn = 42; commit = true };
    Kv.Kv_wal.C_begin { txn = 42; participants = [ 2; 3 ]; three_phase = true };
    Kv.Kv_wal.C_decided { txn = 42; commit = true };
  ]

let codec_row label records to_bytes of_bytes =
  let iters = 100_000 in
  let (), wall =
    time (fun () ->
        for _ = 1 to iters do
          List.iter
            (fun r ->
              match of_bytes (to_bytes r) with
              | Ok _ -> ()
              | Error e -> failwith ("codec round trip failed: " ^ e))
            records
        done)
  in
  let n = iters * List.length records in
  Sim.Json.Obj
    [
      ("codec", Sim.Json.Str label);
      ("round_trips", Sim.Json.Int n);
      ("wall_s", Sim.Json.Float wall);
      ("round_trips_per_sec", Sim.Json.Float (rate n wall));
    ]

let frame_row () =
  (* frame + scan over a realistic log image: 60 framed records *)
  let payloads = List.map Engine.Wal.to_bytes engine_records in
  let image =
    let buf = Buffer.create 1024 in
    for _ = 1 to 15 do
      List.iter (fun p -> Buffer.add_bytes buf (Sim.Disk.Frame.encode p)) payloads
    done;
    Buffer.to_bytes buf
  in
  let iters = 20_000 in
  let (), wall =
    time (fun () ->
        for _ = 1 to iters do
          let _, repair = Sim.Disk.Frame.scan image in
          if not (Sim.Disk.Frame.clean repair) then failwith "scan of a clean image not clean"
        done)
  in
  let n = iters * 60 in
  Sim.Json.Obj
    [
      ("codec", Sim.Json.Str "frame-scan");
      ("records_scanned", Sim.Json.Int n);
      ("wall_s", Sim.Json.Float wall);
      ("records_per_sec", Sim.Json.Float (rate n wall));
    ]

(* ---------------- WAL overhead: durable vs in-memory ---------------- *)

(* the engine chaos loop minus the oracles: same generated schedules,
   only the WAL mode differs *)
let engine_sweep_wall ~durable ~seeds =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let (), wall =
    time (fun () ->
        for seed = 0 to seeds - 1 do
          let schedule = N.generate (Sim.Rng.create ~seed) ~n_sites:3 ~k:1 N.default_profile in
          let plan = FP.of_schedule schedule in
          ignore (Engine.Runtime.run (Engine.Runtime.config ~plan ~seed ~durable_wal:durable rb))
        done)
  in
  wall

let engine_overhead_row seeds =
  Fmt.epr "overhead: engine runs x%d (memory vs durable)...@." seeds;
  let mem = engine_sweep_wall ~durable:false ~seeds in
  let dur = engine_sweep_wall ~durable:true ~seeds in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "protocol");
      ("runs", Sim.Json.Int seeds);
      ("memory_wall_s", Sim.Json.Float mem);
      ("durable_wall_s", Sim.Json.Float dur);
      ("overhead_ratio", Sim.Json.Float (if mem > 0.0 then dur /. mem else 0.0));
    ]

let kv_overhead_row seeds =
  Fmt.epr "overhead: kv sweeps x%d (memory vs durable vs faulted)...@." seeds;
  let sweep ?profile ~durable_wal () =
    time (fun () -> ignore (KC.sweep ?profile ~n_sites:4 ~workers ~k:1 ~seeds ~durable_wal ()))
  in
  let (), mem = sweep ~durable_wal:false () in
  let (), dur = sweep ~durable_wal:true () in
  let (), faulted = sweep ~profile:kv_faulty_profile ~durable_wal:true () in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "kv");
      ("seeds", Sim.Json.Int seeds);
      ("memory_wall_s", Sim.Json.Float mem);
      ("durable_wall_s", Sim.Json.Float dur);
      ("faulted_wall_s", Sim.Json.Float faulted);
      ("overhead_ratio", Sim.Json.Float (if mem > 0.0 then dur /. mem else 0.0));
      ("faulted_ratio", Sim.Json.Float (if mem > 0.0 then faulted /. mem else 0.0));
    ]

(* ---------------- fault-on durability sweeps ---------------- *)

let engine_durability_row (label, build, n, k, seeds) =
  Fmt.epr "durability sweep %s n=%d k=%d seeds=%d...@." label n k seeds;
  let rb = Engine.Rulebook.compile (build n) in
  let summary, wall =
    time (fun () -> C.sweep ~profile:faulty_profile rb ~workers ~k ~seeds ())
  in
  let by = summary.C.violations_by_oracle in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "protocol");
      ("protocol", Sim.Json.Str label);
      ("n", Sim.Json.Int n);
      ("k", Sim.Json.Int k);
      ("seeds", Sim.Json.Int seeds);
      ("p_disk_fault", Sim.Json.Float faulty_profile.N.p_disk_fault);
      ("wall_s", Sim.Json.Float wall);
      ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ("violations_durability", Sim.Json.Int (count_for by C.Durability));
      ("violations_atomicity", Sim.Json.Int (count_for by C.Atomicity));
      ("violations_progress", Sim.Json.Int (count_for by C.Progress));
      ("violations_recovery", Sim.Json.Int (count_for by C.Recovery_convergence));
      ("clean", Sim.Json.Bool (by = []));
    ]

let kv_durability_row seeds =
  Fmt.epr "durability sweep kv central-3pc seeds=%d...@." seeds;
  let summary, wall =
    time (fun () -> KC.sweep ~profile:kv_faulty_profile ~n_sites:4 ~workers ~k:1 ~seeds ())
  in
  let by = summary.KC.violations_by_oracle in
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "kv");
      ("protocol", Sim.Json.Str "central-3pc");
      ("n", Sim.Json.Int 4);
      ("k", Sim.Json.Int 1);
      ("seeds", Sim.Json.Int seeds);
      ("p_disk_fault", Sim.Json.Float kv_faulty_profile.N.p_disk_fault);
      ("wall_s", Sim.Json.Float wall);
      ("schedules_per_sec", Sim.Json.Float (rate seeds wall));
      ("violations_durability", Sim.Json.Int (count_for by KC.Durability));
      ("clean", Sim.Json.Bool (by = []));
    ]

(* ---------------- ablations ---------------- *)

let late_force_row () =
  (* let the sweep find the mis-placed force point on its own, then
     shrink it to the pasteable regression plan *)
  Fmt.epr "ablation: late-force hunt...@.";
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let rec hunt seed =
    if seed > 200 then None
    else
      let o = C.run_one ~late_force:true rb ~k:1 ~seed () in
      if has_durability o.C.violations then Some (seed, o.C.plan) else hunt (seed + 1)
  in
  match hunt 0 with
  | None ->
      Sim.Json.Obj
        [ ("ablation", Sim.Json.Str "late-force"); ("caught", Sim.Json.Bool false) ]
  | Some (seed, plan) ->
      let minimal, shrink_runs = C.shrink ~late_force:true rb ~seed ~oracle:C.Durability plan in
      let reloaded = FP.of_string_exn (FP.to_string minimal) in
      let _, replay = C.run_plan ~late_force:true rb ~plan:reloaded ~seed () in
      Sim.Json.Obj
        [
          ("ablation", Sim.Json.Str "late-force");
          ("caught", Sim.Json.Bool true);
          ("seed", Sim.Json.Int seed);
          ("shrunk_faults", Sim.Json.Int (FP.fault_count minimal));
          ("shrink_runs", Sim.Json.Int shrink_runs);
          ("shrunk_plan", Sim.Json.Str (FP.to_string minimal));
          ("replays_through_text", Sim.Json.Bool (has_durability replay));
        ]

let lost_flush_rows () =
  Fmt.epr "ablation: lying fsync...@.";
  let engine_rows =
    List.map
      (fun (label, build) ->
        let rb = Engine.Rulebook.compile (build 3) in
        let _, violations = C.run_plan rb ~plan:(FP.of_string_exn lost_flush_pinned) ~seed:7 () in
        Sim.Json.Obj
          [
            ("ablation", Sim.Json.Str "lost-flush");
            ("harness", Sim.Json.Str "protocol");
            ("protocol", Sim.Json.Str label);
            ("plan", Sim.Json.Str lost_flush_pinned);
            ("caught", Sim.Json.Bool (has_durability violations));
          ])
      [ ("central-3pc", Core.Catalog.central_3pc); ("decentralized-3pc", Core.Catalog.decentralized_3pc) ]
  in
  let _, kv_violations = KC.run_schedule ~n_sites:4 ~seed:7 kv_lost_flush_schedule in
  engine_rows
  @ [
      Sim.Json.Obj
        [
          ("ablation", Sim.Json.Str "lost-flush");
          ("harness", Sim.Json.Str "kv");
          ("protocol", Sim.Json.Str "central-3pc");
          ("schedule", Sim.Json.Str (N.to_string kv_lost_flush_schedule));
          ("caught", Sim.Json.Bool (kv_has_durability kv_violations));
        ];
    ]

(* ---------------- full bench ---------------- *)

let full () =
  let report = Sim.Report.create ~bench_name:"durability" () in
  Sim.Report.add report "codec"
    (Sim.Json.List
       [
         codec_row "engine-wal" engine_records Engine.Wal.to_bytes Engine.Wal.of_bytes;
         codec_row "kv-wal" kv_records Kv.Kv_wal.to_bytes Kv.Kv_wal.of_bytes;
         frame_row ();
       ]);
  Sim.Report.add report "overhead"
    (Sim.Json.List [ engine_overhead_row 500; kv_overhead_row 120 ]);
  Sim.Report.add report "durability_sweeps"
    (Sim.Json.List
       [
         engine_durability_row ("central-3pc", Core.Catalog.central_3pc, 3, 1, 500);
         engine_durability_row ("decentralized-3pc", Core.Catalog.decentralized_3pc, 3, 1, 500);
         engine_durability_row ("central-3pc", Core.Catalog.central_3pc, 4, 2, 200);
         kv_durability_row 150;
       ]);
  Sim.Report.add report "ablations" (Sim.Json.List (late_force_row () :: lost_flush_rows ()));
  let file = "BENCH_durability.json" in
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

(* ---------------- smoke mode ---------------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Fmt.epr "UNEXPECTED %s@." what
  end

let smoke () =
  let rb_c3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let rb_d3 = Engine.Rulebook.compile (Core.Catalog.decentralized_3pc 3) in
  (* fault-on sweeps must stay clean: torn/corrupt tails are vacuous
     under the force discipline *)
  let sc = C.sweep ~profile:faulty_profile rb_c3 ~workers ~k:1 ~seeds:80 () in
  check "central-3pc reported violations under disk faults" (sc.C.violations_by_oracle = []);
  let sd = C.sweep ~profile:faulty_profile rb_d3 ~workers ~k:1 ~seeds:40 () in
  check "decentralized-3pc reported violations under disk faults" (sd.C.violations_by_oracle = []);
  let skv = KC.sweep ~profile:kv_faulty_profile ~n_sites:4 ~workers ~k:1 ~seeds:25 () in
  check "kv central-3pc reported violations under disk faults" (skv.KC.violations_by_oracle = []);
  (* the late-force ablation must be caught, and only the ablation *)
  let plan = FP.of_string_exn late_force_pinned in
  let _, late = C.run_plan ~late_force:true rb_c3 ~plan ~seed:7 () in
  check "late force not caught by the durability oracle" (has_durability late);
  let _, correct = C.run_plan rb_c3 ~plan ~seed:7 () in
  check "correct force order tripped the durability oracle" (not (has_durability correct));
  (* the lying fsync must be caught on both harnesses *)
  let _, lf = C.run_plan rb_c3 ~plan:(FP.of_string_exn lost_flush_pinned) ~seed:7 () in
  check "engine lost-flush not caught" (has_durability lf);
  let _, kv_lf = KC.run_schedule ~n_sites:4 ~seed:7 kv_lost_flush_schedule in
  check "kv lost-flush not caught" (kv_has_durability kv_lf);
  (* with faults off, the durable WAL must not perturb the simulation *)
  List.iter
    (fun seed ->
      let a = KC.run_one ~n_sites:4 ~k:1 ~seed () in
      let b = KC.run_one ~n_sites:4 ~k:1 ~seed ~durable_wal:false () in
      check
        (Fmt.str "kv seed %d: durable and in-memory runs diverge" seed)
        (a.KC.result.Kv.Db.committed = b.KC.result.Kv.Db.committed
        && a.KC.result.Kv.Db.aborted = b.KC.result.Kv.Db.aborted
        && a.KC.result.Kv.Db.messages_sent = b.KC.result.Kv.Db.messages_sent))
    [ 0; 48 ];
  if !failures > 0 then begin
    Fmt.epr "durability-smoke: %d unexpected result(s)@." !failures;
    exit 1
  end;
  Fmt.pr
    "durability-smoke: fault-on sweeps clean, late-force and lying-fsync ablations caught, \
     durable run = in-memory run@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
