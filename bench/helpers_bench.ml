(** Shared helpers for the bench/experiment executables.

    Exactly one [time] lives here, on top of {!Sim.Clock} — the four
    bench drivers used to carry four identical copies of the
    [Unix.gettimeofday] wrapper, which is how the [Sys.time] CPU-vs-wall
    bug in the oracle timings went unnoticed: with every driver rolling
    its own clock there was no single place to look. *)

let time = Sim.Clock.time

(** [n] events over [wall] seconds as a rate; 0 when nothing elapsed. *)
let rate n wall = if wall > 0.0 then float_of_int n /. wall else 0.0

(** per-oracle count lookup in a [violations_by_oracle] assoc list *)
let count_for by_oracle o = Option.value ~default:0 (List.assoc_opt o by_oracle)

(** [arg_int "--workers" ~default argv] — the integer following the flag
    in [argv], or [default] when absent/malformed.  The benches parse
    argv by hand; this keeps the sweep flags uniform across them. *)
let arg_int flag ~default argv =
  let rec find = function
    | f :: v :: _ when f = flag -> ( match int_of_string_opt v with Some n -> n | None -> default)
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list argv)

(** merged concurrency set of [state] as a sorted string list *)
let cs_ids graph state =
  let cs = Core.Concurrency.compute graph in
  Core.Concurrency.String_set.elements (Core.Concurrency.merged_ids cs ~state)

(** The database harness for {!Engine.Explore}, shared by `skeen
    explore --kv` and the explore bench.  It lives here rather than in
    lib/kv because kv does not depend on engine: plans cross the
    boundary through {!Engine.Failure_plan.to_schedule}.  [random_plan]
    reproduces {!Kv.Chaos_db.run_one}'s seed discipline (workload
    stream split first, schedule stream second), so the [`Random]
    baseline is exactly the classic kv chaos sweep. *)
let kv_harness ?(protocol = Kv.Node.Two_phase) ?termination ?presumption ?(n_sites = 4) ?until
    ?durable_wal ?detector ?fencing ?(profile = Kv.Chaos_db.default_profile) ?(k = 1) () =
  let open Engine.Explore in
  let name =
    "kv-"
    ^
    match protocol with
    | Kv.Node.Two_phase -> "2pc"
    | Kv.Node.Three_phase -> "3pc"
    | Kv.Node.Paxos f -> Printf.sprintf "paxos-f%d" f
  in
  let run ~seed plan =
    let schedule = Engine.Failure_plan.to_schedule plan in
    let result, violations =
      Kv.Chaos_db.run_schedule ~protocol ?termination ?presumption ~n_sites ?until ?durable_wal
        ?detector ?fencing ~seed schedule
    in
    {
      fingerprint = Kv.Chaos_db.fingerprint_of result;
      violations =
        List.map
          (fun (v : Kv.Chaos_db.violation) -> (Kv.Chaos_db.oracle_name v.oracle, v.detail))
          violations;
    }
  in
  let shrink ~seed ~oracle plan =
    let named =
      List.find_opt
        (fun o -> Kv.Chaos_db.oracle_name o = oracle)
        [
          Kv.Chaos_db.Atomicity; Kv.Chaos_db.Conservation; Kv.Chaos_db.Progress;
          Kv.Chaos_db.Durability; Kv.Chaos_db.Split_brain;
        ]
    in
    match named with
    | None -> (plan, 0)
    | Some oracle ->
        let minimal, runs =
          Kv.Chaos_db.shrink ~protocol ?termination ?presumption ~n_sites ?until ?durable_wal
            ?detector ?fencing ~seed ~oracle
            (Engine.Failure_plan.to_schedule plan)
        in
        (Engine.Failure_plan.of_schedule minimal, runs)
  in
  let random_plan ~seed =
    let root = Sim.Rng.create ~seed in
    ignore (Sim.Rng.split root) (* the workload stream, consumed by [Kv.Chaos_db.workload_of] *);
    let sched_rng = Sim.Rng.split root in
    Engine.Failure_plan.of_schedule (Sim.Nemesis.generate sched_rng ~n_sites ~k profile)
  in
  let families =
    [ Timed_crashes; Recoveries; Msg_faults; Delay_spikes; Stalls; Hb_losses; Storms ]
    @ match protocol with
      | Kv.Node.Paxos _ -> [ Acceptor_crashes; Lease_faults ]
      | Kv.Node.Two_phase | Kv.Node.Three_phase -> []
  in
  {
    name;
    n_sites;
    horizon = profile.Sim.Nemesis.horizon;
    families;
    run;
    shrink;
    random_plan;
  }
