(** Shared helpers for the bench/experiment executables.

    Exactly one [time] lives here, on top of {!Sim.Clock} — the four
    bench drivers used to carry four identical copies of the
    [Unix.gettimeofday] wrapper, which is how the [Sys.time] CPU-vs-wall
    bug in the oracle timings went unnoticed: with every driver rolling
    its own clock there was no single place to look. *)

let time = Sim.Clock.time

(** [n] events over [wall] seconds as a rate; 0 when nothing elapsed. *)
let rate n wall = if wall > 0.0 then float_of_int n /. wall else 0.0

(** per-oracle count lookup in a [violations_by_oracle] assoc list *)
let count_for by_oracle o = Option.value ~default:0 (List.assoc_opt o by_oracle)

(** [arg_int "--workers" ~default argv] — the integer following the flag
    in [argv], or [default] when absent/malformed.  The benches parse
    argv by hand; this keeps the sweep flags uniform across them. *)
let arg_int flag ~default argv =
  let rec find = function
    | f :: v :: _ when f = flag -> ( match int_of_string_opt v with Some n -> n | None -> default)
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list argv)

(** merged concurrency set of [state] as a sorted string list *)
let cs_ids graph state =
  let cs = Core.Concurrency.compute graph in
  Core.Concurrency.String_set.elements (Core.Concurrency.merged_ids cs ~state)
