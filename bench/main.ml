(** Benchmark executable: first the experiment harness that regenerates
    every figure/table of the paper (see EXPERIMENTS.md), then Bechamel
    micro-benchmarks of the analysis and execution paths.

    Usage:
      dune exec bench/main.exe                 (experiments + micro-benches)
      dune exec bench/main.exe -- experiments  (experiments only)
      dune exec bench/main.exe -- micro        (micro-benches only) *)

open Bechamel
open Toolkit

let b_reachability_2pc =
  Test.make ~name:"reachability: central-2pc n=3"
    (Staged.stage (fun () -> ignore (Core.Reachability.build (Core.Catalog.central_2pc 3))))

let b_reachability_3pc =
  Test.make ~name:"reachability: central-3pc n=3"
    (Staged.stage (fun () -> ignore (Core.Reachability.build (Core.Catalog.central_3pc 3))))

let b_concurrency =
  let graph = Core.Reachability.build (Core.Catalog.central_3pc 3) in
  Test.make ~name:"concurrency sets: central-3pc n=3"
    (Staged.stage (fun () -> ignore (Core.Concurrency.compute graph)))

let b_theorem =
  let graph = Core.Reachability.build (Core.Catalog.central_3pc 3) in
  Test.make ~name:"nonblocking theorem: central-3pc n=3"
    (Staged.stage (fun () -> ignore (Core.Nonblocking.analyze graph)))

let b_synchrony =
  Test.make ~name:"synchrony check: central-2pc n=3"
    (Staged.stage (fun () -> ignore (Core.Synchrony.check (Core.Catalog.central_2pc 3))))

let b_synthesis =
  let graph = Core.Reachability.build (Core.Catalog.central_2pc 3) in
  Test.make ~name:"buffer synthesis: central-2pc n=3"
    (Staged.stage (fun () -> ignore (Core.Synthesis.buffer_protocol graph)))

let b_runtime_2pc =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  Test.make ~name:"runtime: one 2PC commit, n=3"
    (Staged.stage (fun () -> ignore (Engine.Runtime.run (Engine.Runtime.config rb))))

let b_runtime_3pc =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  Test.make ~name:"runtime: one 3PC commit, n=3"
    (Staged.stage (fun () -> ignore (Engine.Runtime.run (Engine.Runtime.config rb))))

let b_runtime_termination =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let plan =
    Engine.Failure_plan.crash_at_step ~site:1 ~step:1 ~mode:(Engine.Failure_plan.After_logging 0)
  in
  Test.make ~name:"runtime: 3PC termination protocol, n=3"
    (Staged.stage (fun () -> ignore (Engine.Runtime.run (Engine.Runtime.config ~plan rb))))

let b_kv_bank =
  let rng = Sim.Rng.create ~seed:1 in
  let wl = Kv.Workload.bank rng ~n_txns:50 ~accounts:16 ~arrival_rate:1.0 in
  let cfg =
    Kv.Db.config ~n_sites:3 ~protocol:Kv.Node.Three_phase ~seed:1
      ~initial_data:(Kv.Workload.bank_initial ~accounts:16 ~initial_balance:100)
      ()
  in
  Test.make ~name:"kv: 50 bank transfers under 3PC, n=3"
    (Staged.stage (fun () -> ignore (Kv.Db.run cfg wl)))

let b_model_check =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  Test.make ~name:"model check: central-3pc n=3, k=1"
    (Staged.stage (fun () ->
         ignore (Engine.Model_check.run { Engine.Model_check.rulebook = rb; max_crashes = 1; limit = 1_000_000; rule = `Skeen })))

let b_election =
  Test.make ~name:"election: bully, 5 sites + leader crash"
    (Staged.stage (fun () ->
         let t = Engine.Election.create ~n_sites:5 ~seed:1 () in
         ignore (Engine.Election.run t ~crashes:[ (5, 10.0) ] ())))

let b_lock_table =
  Test.make ~name:"lock table: 100 acquire/release cycles"
    (Staged.stage (fun () ->
         let t = Kv.Lock_table.create () in
         for txn = 1 to 100 do
           ignore (Kv.Lock_table.acquire t ~txn ~key:"a" ~mode:Kv.Lock_table.Exclusive);
           ignore (Kv.Lock_table.acquire t ~txn ~key:"b" ~mode:Kv.Lock_table.Shared);
           Kv.Lock_table.release_all t ~txn
         done))

let micro_tests =
  Test.make_grouped ~name:"skeen81"
    [
      b_reachability_2pc;
      b_reachability_3pc;
      b_concurrency;
      b_theorem;
      b_synchrony;
      b_synthesis;
      b_runtime_2pc;
      b_runtime_3pc;
      b_runtime_termination;
      b_kv_bank;
      b_model_check;
      b_election;
      b_lock_table;
    ]

(* Returns (name, ns/run) estimates so the run report can export them. *)
let run_micro () =
  Fmt.pr "@.=== Bechamel micro-benchmarks (monotonic clock, ns/run) ===@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances micro_tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  let estimates = ref [] in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort compare
        |> List.iter (fun (name, ols) ->
               match Analyze.OLS.estimates ols with
               | Some [ est ] ->
                   estimates := (name, est) :: !estimates;
                   Fmt.pr "%-48s %12.1f ns/run@." name est
               | _ -> Fmt.pr "%-48s %12s@." name "n/a"))
    results;
  List.rev !estimates

let report_file = "BENCH_results.json"

let () =
  let argv = Array.to_list Sys.argv in
  let want s = List.mem s argv in
  let report = Sim.Report.create ~bench_name:"results" () in
  let ok = if want "micro" && not (want "experiments") then true else Experiments.run_all () in
  Sim.Report.add report "experiments" (Experiments.results_json ());
  if (not (want "experiments")) || want "micro" then begin
    let estimates = run_micro () in
    Sim.Report.add report "micro_ns_per_run"
      (Sim.Json.Obj (List.map (fun (name, est) -> (name, Sim.Json.Float est)) estimates))
  end;
  Sim.Report.write report ~file:report_file;
  Fmt.pr "@.wrote %s@." report_file;
  if not ok then exit 1
