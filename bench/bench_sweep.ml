(** Parallel-sweep benchmark: what Domain-sharding the chaos seed sweeps
    buys and the proof that it changes nothing but wall-clock.  Writes
    [BENCH_sweep.json] with three sections:

    - [host]: the runner's available worker count
      ([Sim.Sweep.available_workers]) — speedup rows only mean something
      relative to it.
    - [chaos]: a 100k-seed engine sweep (central-3pc, n=3, k=1) at
      workers 1/2/4/8, each row reporting wall-clock, seeds/sec, speedup
      against the sequential run, and [merge_equal] — whether the merged
      metrics (deterministic projection, [wall_]-prefixed host-timing
      histograms dropped) and per-oracle violation counts are
      byte-identical to the workers=1 run.
    - [chaos_kv]: the same equivalence on the database harness at a
      3k-seed scale.

    [--smoke] (wired to the [@sweep-smoke] dune alias) runs a
    seconds-long corpus: 2-worker sharded sweeps on both harnesses must
    merge byte-identically to the sequential runs; exits non-zero on any
    divergence, and still writes a smoke-sized [BENCH_sweep.json] so CI
    always uploads the merge-equivalence evidence. *)

module C = Engine.Chaos
module KC = Kv.Chaos_db

let time = Helpers_bench.time
let rate = Helpers_bench.rate

(* the deterministic projection of a sweep's merged metrics: everything
   except the host wall-clock histograms, as canonical JSON text *)
let metrics_key m = Sim.Json.to_string (Sim.Metrics.to_json ~drop_wall:true m)

(* ---------------- engine rows ---------------- *)

let engine_sweep ~workers ~seeds =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  time (fun () -> C.sweep rb ~workers ~k:1 ~seeds ())

let engine_fingerprint (s : C.summary) =
  ( metrics_key s.C.metrics,
    List.map (fun (o, n) -> (C.oracle_name o, n)) s.C.violations_by_oracle,
    List.map
      (fun cx -> (cx.C.cx_seed, Engine.Failure_plan.to_string cx.C.cx_plan))
      s.C.counterexamples )

let engine_row ~seeds ~seq_wall ~seq_fp (workers, summary, wall) =
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "protocol");
      ("protocol", Sim.Json.Str "central-3pc");
      ("n", Sim.Json.Int 3);
      ("k", Sim.Json.Int 1);
      ("seeds", Sim.Json.Int seeds);
      ("workers", Sim.Json.Int workers);
      ("wall_s", Sim.Json.Float wall);
      ("seeds_per_sec", Sim.Json.Float (rate seeds wall));
      ("speedup_vs_seq", Sim.Json.Float (if wall > 0.0 then seq_wall /. wall else 0.0));
      ("merge_equal", Sim.Json.Bool (engine_fingerprint summary = seq_fp));
    ]

(* ---------------- database-harness rows ---------------- *)

let kv_sweep ~workers ~seeds =
  time (fun () -> KC.sweep ~protocol:Kv.Node.Three_phase ~n_sites:4 ~workers ~k:1 ~seeds ())

let kv_fingerprint (s : KC.summary) =
  ( metrics_key s.KC.metrics,
    List.map (fun (o, n) -> (KC.oracle_name o, n)) s.KC.violations_by_oracle,
    List.map
      (fun (seed, _, shrunk) -> (seed, Sim.Nemesis.to_string shrunk))
      s.KC.failing )

let kv_row ~seeds ~seq_wall ~seq_fp (workers, summary, wall) =
  Sim.Json.Obj
    [
      ("harness", Sim.Json.Str "kv");
      ("protocol", Sim.Json.Str "central-3pc");
      ("n", Sim.Json.Int 4);
      ("k", Sim.Json.Int 1);
      ("seeds", Sim.Json.Int seeds);
      ("workers", Sim.Json.Int workers);
      ("wall_s", Sim.Json.Float wall);
      ("seeds_per_sec", Sim.Json.Float (rate seeds wall));
      ("speedup_vs_seq", Sim.Json.Float (if wall > 0.0 then seq_wall /. wall else 0.0));
      ("merge_equal", Sim.Json.Bool (kv_fingerprint summary = seq_fp));
    ]

let write_report ~engine_rows ~kv_rows ~file =
  let report = Sim.Report.create ~bench_name:"sweep" () in
  Sim.Report.add report "host"
    (Sim.Json.Obj [ ("available_workers", Sim.Json.Int (Sim.Sweep.available_workers ())) ]);
  Sim.Report.add report "chaos" (Sim.Json.List engine_rows);
  Sim.Report.add report "chaos_kv" (Sim.Json.List kv_rows);
  Sim.Report.write report ~file;
  Fmt.pr "wrote %s@." file

let run ~engine_seeds ~engine_workers ~kv_seeds ~kv_workers ~file =
  Fmt.epr "sweep central-3pc n=3 k=1 seeds=%d workers=1 (baseline)...@." engine_seeds;
  let seq, seq_wall = engine_sweep ~workers:1 ~seeds:engine_seeds in
  let seq_fp = engine_fingerprint seq in
  let engine_results =
    (1, seq, seq_wall)
    :: List.map
         (fun w ->
           Fmt.epr "sweep central-3pc n=3 k=1 seeds=%d workers=%d...@." engine_seeds w;
           let s, wall = engine_sweep ~workers:w ~seeds:engine_seeds in
           (w, s, wall))
         engine_workers
  in
  Fmt.epr "sweep kv central-3pc n=4 k=1 seeds=%d workers=1 (baseline)...@." kv_seeds;
  let kseq, kseq_wall = kv_sweep ~workers:1 ~seeds:kv_seeds in
  let kseq_fp = kv_fingerprint kseq in
  let kv_results =
    (1, kseq, kseq_wall)
    :: List.map
         (fun w ->
           Fmt.epr "sweep kv central-3pc n=4 k=1 seeds=%d workers=%d...@." kv_seeds w;
           let s, wall = kv_sweep ~workers:w ~seeds:kv_seeds in
           (w, s, wall))
         kv_workers
  in
  write_report
    ~engine_rows:
      (List.map (engine_row ~seeds:engine_seeds ~seq_wall ~seq_fp) engine_results)
    ~kv_rows:(List.map (kv_row ~seeds:kv_seeds ~seq_wall:kseq_wall ~seq_fp:kseq_fp) kv_results)
    ~file;
  let diverged =
    List.filter (fun (_, s, _) -> engine_fingerprint s <> seq_fp) engine_results
    |> List.map (fun (w, _, _) -> Fmt.str "engine workers=%d" w)
  in
  let kv_diverged =
    List.filter (fun (_, s, _) -> kv_fingerprint s <> kseq_fp) kv_results
    |> List.map (fun (w, _, _) -> Fmt.str "kv workers=%d" w)
  in
  match diverged @ kv_diverged with
  | [] ->
      Fmt.pr "all sharded sweeps merge byte-identically to the sequential runs@.";
      true
  | ds ->
      List.iter (Fmt.epr "DIVERGED from the workers=1 run: %s@.") ds;
      false

let full () =
  if
    not
      (run ~engine_seeds:100_000 ~engine_workers:[ 2; 4; 8 ] ~kv_seeds:3_000
         ~kv_workers:[ 4 ] ~file:"BENCH_sweep.json")
  then exit 1

let smoke () =
  if
    not
      (run ~engine_seeds:2_000 ~engine_workers:[ 2 ] ~kv_seeds:100 ~kv_workers:[ 2 ]
         ~file:"BENCH_sweep.json")
  then begin
    Fmt.epr "sweep-smoke: sharded and sequential sweeps diverged@.";
    exit 1
  end;
  Fmt.pr "sweep-smoke: 2-worker sharded sweeps merge byte-identically on both harnesses@."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ -> full ()
